"""Tests for spectral Gaussian random fields."""

import numpy as np
import pytest

from repro.fields.random_field import GaussianRandomField
from repro.geometry.primitives import BoundingBox


class TestGaussianRandomField:
    def test_deterministic(self):
        region = BoundingBox.square(50.0)
        a = GaussianRandomField(region, seed=5)
        b = GaussianRandomField(region, seed=5)
        c = GaussianRandomField(region, seed=6)
        x = np.linspace(0, 50, 20)
        assert np.allclose(a(x, x), b(x, x))
        assert not np.allclose(a(x, x), c(x, x))

    def test_mean_and_amplitude(self):
        region = BoundingBox.square(100.0)
        f = GaussianRandomField(region, mean=5.0, amplitude=2.0, seed=0)
        vals = f._grid.sample_data.values
        assert np.isclose(vals.mean(), 5.0, atol=0.1)
        assert np.isclose(vals.std(), 2.0, atol=0.2)

    def test_correlation_length_controls_smoothness(self):
        region = BoundingBox.square(100.0)
        rough = GaussianRandomField(region, correlation_length=2.0, seed=1)
        smooth = GaussianRandomField(region, correlation_length=25.0, seed=1)

        def roughness(f):
            v = f._grid.sample_data.values
            return np.abs(np.diff(v, axis=0)).mean()

        assert roughness(rough) > 2.0 * roughness(smooth)

    def test_validation(self):
        region = BoundingBox.square(10.0)
        with pytest.raises(ValueError):
            GaussianRandomField(region, correlation_length=0.0)
        with pytest.raises(ValueError):
            GaussianRandomField(region, grid_resolution=4)

    def test_evaluation_in_region(self):
        region = BoundingBox.square(30.0)
        f = GaussianRandomField(region, seed=2)
        q = np.random.default_rng(0).uniform(0, 30, size=(40, 2))
        out = f(q[:, 0], q[:, 1])
        assert out.shape == (40,)
        assert np.isfinite(out).all()
