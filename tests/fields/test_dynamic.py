"""Tests for time-varying field combinators."""

import numpy as np
import pytest

from repro.fields.analytic import PlaneField, SaddleField
from repro.fields.dynamic import (
    DiurnalField,
    DriftingField,
    KeyframeField,
    ScaledField,
    StaticAsDynamic,
    SumField,
)


class TestDrifting:
    def test_translation(self):
        base = PlaneField(a=1.0)  # z = x
        field = DriftingField(base, velocity=(2.0, 0.0))
        assert np.isclose(field(10.0, 0.0, t=0.0), 10.0)
        assert np.isclose(field(10.0, 0.0, t=3.0), 4.0)

    def test_diagonal_velocity(self):
        base = SaddleField(scale=1.0)
        field = DriftingField(base, velocity=(1.0, 1.0))
        assert np.isclose(field(2.0, 2.0, t=1.0), base(1.0, 1.0))


class TestDiurnal:
    def test_night_is_floor(self):
        field = DiurnalField(PlaneField(c=10.0), floor=0.5)
        assert field(0.0, 0.0, t=0.0) == 0.5
        assert field(0.0, 0.0, t=23 * 60.0) == 0.5

    def test_noon_peak(self):
        field = DiurnalField(PlaneField(c=10.0))
        assert np.isclose(field(0.0, 0.0, t=12 * 60.0), 10.0)

    def test_monotone_morning(self):
        field = DiurnalField(PlaneField(c=1.0))
        morning = [field(0.0, 0.0, t=t) for t in (7 * 60.0, 9 * 60.0, 11 * 60.0)]
        assert morning[0] < morning[1] < morning[2]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            DiurnalField(PlaneField(), sunrise=600.0, sunset=500.0)


class TestKeyframe:
    def test_interpolates_between_frames(self):
        field = KeyframeField(
            [0.0, 10.0], [PlaneField(c=0.0), PlaneField(c=10.0)]
        )
        assert np.isclose(field(0.0, 0.0, t=5.0), 5.0)
        assert np.isclose(field(0.0, 0.0, t=2.5), 2.5)

    def test_clamped_outside_range(self):
        field = KeyframeField(
            [0.0, 10.0], [PlaneField(c=0.0), PlaneField(c=10.0)]
        )
        assert field(0.0, 0.0, t=-5.0) == 0.0
        assert field(0.0, 0.0, t=50.0) == 10.0

    def test_unsorted_times_sorted(self):
        field = KeyframeField(
            [10.0, 0.0], [PlaneField(c=10.0), PlaneField(c=0.0)]
        )
        assert np.isclose(field(0.0, 0.0, t=5.0), 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyframeField([], [])
        with pytest.raises(ValueError):
            KeyframeField([0.0], [PlaneField(), PlaneField()])
        with pytest.raises(ValueError):
            KeyframeField([0.0, 0.0], [PlaneField(), PlaneField()])

    def test_single_frame_constant(self):
        field = KeyframeField([5.0], [PlaneField(c=2.0)])
        assert field(0.0, 0.0, t=-100.0) == 2.0
        assert field(0.0, 0.0, t=100.0) == 2.0


class TestCombinators:
    def test_sum(self):
        f = SumField(
            [StaticAsDynamic(PlaneField(c=1.0)), StaticAsDynamic(PlaneField(c=2.0))]
        )
        assert f(0.0, 0.0, t=0.0) == 3.0
        with pytest.raises(ValueError):
            SumField([])

    def test_scaled(self):
        f = ScaledField(StaticAsDynamic(PlaneField(c=2.0)), scale=3.0, offset=1.0)
        assert f(0.0, 0.0, t=0.0) == 7.0

    def test_static_adapter(self):
        f = StaticAsDynamic(PlaneField(a=1.0))
        assert f(4.0, 0.0, t=0.0) == f(4.0, 0.0, t=999.0) == 4.0
