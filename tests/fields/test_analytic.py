"""Tests for analytic surfaces (peaks, plane, saddle, mixtures)."""

import numpy as np
import pytest

from repro.fields.analytic import (
    GaussianBump,
    GaussianMixtureField,
    PeaksField,
    PlaneField,
    RidgeField,
    SaddleField,
    TerraceField,
    peaks,
)
from repro.geometry.primitives import BoundingBox


class TestPeaks:
    def test_known_value_at_origin(self):
        # peaks(0,0) = 3*exp(-1) - 10*0*... - (1/3)exp(-1) = (3 - 1/3)/e... compute directly
        expected = (
            3.0 * np.exp(-1.0)
            - 0.0
            - (1.0 / 3.0) * np.exp(-1.0)
        )
        assert np.isclose(peaks(0.0, 0.0), expected)

    def test_vectorised(self):
        x = np.linspace(-3, 3, 7)
        y = np.zeros(7)
        out = peaks(x, y)
        assert out.shape == (7,)

    def test_peaks_field_rescaling(self):
        field = PeaksField(side=100.0)
        # Center of the region maps to the native origin.
        assert np.isclose(field(50.0, 50.0), peaks(0.0, 0.0))
        assert np.isclose(field(0.0, 0.0), peaks(-3.0, -3.0))
        assert np.isclose(field(100.0, 100.0), peaks(3.0, 3.0))

    def test_amplitude(self):
        base = PeaksField(side=10.0)
        double = PeaksField(side=10.0, amplitude=2.0)
        assert np.isclose(double(3.0, 7.0), 2.0 * base(3.0, 7.0))

    def test_bad_side(self):
        with pytest.raises(ValueError):
            PeaksField(side=0.0)


class TestSimpleSurfaces:
    def test_plane(self):
        f = PlaneField(a=2.0, b=-1.0, c=5.0)
        assert f(3.0, 4.0) == 2 * 3 - 4 + 5

    def test_saddle(self):
        f = SaddleField(scale=2.0, center=(1.0, 1.0))
        assert f(2.0, 3.0) == 2.0 * 1.0 * 2.0
        assert f(1.0, 100.0) == 0.0

    def test_ridge_period(self):
        f = RidgeField(amplitude=3.0, wavelength=10.0)
        assert np.isclose(f(0.0, 0.0), 0.0)
        assert np.isclose(f(2.5, 0.0), 3.0)
        assert np.isclose(f(10.0, 5.0), 0.0, atol=1e-12)

    def test_ridge_bad_wavelength(self):
        with pytest.raises(ValueError):
            RidgeField(wavelength=0.0)


class TestGaussianMixture:
    def test_bump_validation(self):
        with pytest.raises(ValueError):
            GaussianBump(cx=0, cy=0, sigma=0.0, amplitude=1.0)

    def test_peak_value(self):
        f = GaussianMixtureField(
            [GaussianBump(cx=5, cy=5, sigma=2.0, amplitude=4.0)], baseline=1.0
        )
        assert np.isclose(f(5.0, 5.0), 5.0)
        assert np.isclose(f(100.0, 100.0), 1.0, atol=1e-6)

    def test_gradient_matches_finite_difference(self, bump_field):
        x, y = 32.0, 45.0
        h = 1e-5
        gx, gy = bump_field.gradient(x, y)
        fd_gx = (bump_field(x + h, y) - bump_field(x - h, y)) / (2 * h)
        fd_gy = (bump_field(x, y + h) - bump_field(x, y - h)) / (2 * h)
        assert np.isclose(gx, fd_gx, atol=1e-6)
        assert np.isclose(gy, fd_gy, atol=1e-6)

    def test_hessian_matches_finite_difference(self, bump_field):
        x, y = 28.0, 41.0
        h = 1e-4
        hxx, hxy, hyy = bump_field.hessian(x, y)
        fd_hxx = (
            bump_field(x + h, y) - 2 * bump_field(x, y) + bump_field(x - h, y)
        ) / h**2
        fd_hyy = (
            bump_field(x, y + h) - 2 * bump_field(x, y) + bump_field(x, y - h)
        ) / h**2
        fd_hxy = (
            bump_field(x + h, y + h)
            - bump_field(x + h, y - h)
            - bump_field(x - h, y + h)
            + bump_field(x - h, y - h)
        ) / (4 * h**2)
        assert np.isclose(hxx, fd_hxx, atol=1e-4)
        assert np.isclose(hyy, fd_hyy, atol=1e-4)
        assert np.isclose(hxy, fd_hxy, atol=1e-4)

    def test_random_mixture_deterministic(self):
        region = BoundingBox.square(50.0)
        a = GaussianMixtureField.random(5, region, seed=3)
        b = GaussianMixtureField.random(5, region, seed=3)
        c = GaussianMixtureField.random(5, region, seed=4)
        assert a.bumps == b.bumps
        assert a.bumps != c.bumps

    def test_random_mixture_in_region(self):
        region = BoundingBox.square(50.0)
        f = GaussianMixtureField.random(10, region, seed=0)
        for bump in f.bumps:
            assert region.contains((bump.cx, bump.cy))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            GaussianMixtureField.random(-1, BoundingBox.square(1.0), seed=0)


class TestTerrace:
    def test_steps_along_direction(self):
        f = TerraceField(step=2.0, run=10.0, direction=(1.0, 0.0))
        assert f(5.0, 0.0) == 0.0
        assert f(15.0, 0.0) == 2.0
        assert f(25.0, 99.0) == 4.0  # independent of the cross direction

    def test_flat_between_cliffs(self):
        f = TerraceField(step=3.0, run=20.0, direction=(0.0, 1.0))
        xs = np.linspace(0, 100, 11)
        values = f(xs, np.full(11, 5.0))
        assert np.allclose(values, values[0])

    def test_direction_normalised(self):
        a = TerraceField(direction=(2.0, 0.0))
        b = TerraceField(direction=(1.0, 0.0))
        assert np.isclose(a(30.0, 7.0), b(30.0, 7.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            TerraceField(run=0.0)
        with pytest.raises(ValueError):
            TerraceField(direction=(0.0, 0.0))
