"""Tests for the synthetic GreenOrbs light field."""

import numpy as np
import pytest

from repro.fields.base import sample_grid
from repro.fields.greenorbs import GreenOrbsLightField, clock_to_minutes


class TestClock:
    def test_basic(self):
        assert clock_to_minutes("10:00") == 600.0
        assert clock_to_minutes("0:30") == 30.0
        assert clock_to_minutes("23:59") == 23 * 60 + 59

    def test_invalid(self):
        for bad in ("25:00", "10:60", "banana", "10", "10:0"):
            with pytest.raises(ValueError):
                clock_to_minutes(bad)


class TestField:
    def test_deterministic_per_seed(self):
        a = GreenOrbsLightField(seed=3)
        b = GreenOrbsLightField(seed=3)
        c = GreenOrbsLightField(seed=4)
        x = np.linspace(0, 100, 11)
        assert np.allclose(a(x, x, 600.0), b(x, x, 600.0))
        assert not np.allclose(a(x, x, 600.0), c(x, x, 600.0))

    def test_nonnegative_light(self, greenorbs_field):
        gs = sample_grid(
            greenorbs_field, greenorbs_field.region, 31, t=600.0
        )
        assert (gs.values >= 0.0).all()

    def test_dark_at_night(self, greenorbs_field):
        midnight = greenorbs_field(50.0, 50.0, t=0.0)
        noon = greenorbs_field(50.0, 50.0, t=720.0)
        assert noon > midnight

    def test_sun_factor_profile(self, greenorbs_field):
        f = greenorbs_field
        assert f.sun_factor(0.0) == 0.0
        assert f.sun_factor(6 * 60.0) == 0.0
        assert np.isclose(f.sun_factor(12 * 60.0), 1.0)
        assert 0.0 < f.sun_factor(8 * 60.0) < 1.0

    def test_time_variation_is_gradual(self, greenorbs_field):
        gs1 = sample_grid(greenorbs_field, greenorbs_field.region, 21, t=600.0)
        gs2 = sample_grid(greenorbs_field, greenorbs_field.region, 21, t=605.0)
        gs3 = sample_grid(greenorbs_field, greenorbs_field.region, 21, t=900.0)
        d_short = np.abs(gs1.values - gs2.values).mean()
        d_long = np.abs(gs1.values - gs3.values).mean()
        assert d_short < d_long
        assert d_short < 0.2  # 5 minutes changes little

    def test_freeze_sun(self):
        frozen = GreenOrbsLightField(seed=1, freeze_sun_at=600.0)
        assert frozen.sun_factor(600.0) == frozen.sun_factor(900.0)
        live = GreenOrbsLightField(seed=1)
        assert live.sun_factor(600.0) != live.sun_factor(900.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GreenOrbsLightField(side=0.0)
        with pytest.raises(ValueError):
            GreenOrbsLightField(sunrise=700.0, sunset=600.0)

    def test_at_clock_helpers(self, greenorbs_field):
        snap = greenorbs_field.at_clock("10:00")
        ref = greenorbs_field.reference_snapshot()
        assert np.isclose(snap(30.0, 30.0), ref(30.0, 30.0))
        assert np.isclose(
            snap(30.0, 30.0), greenorbs_field(30.0, 30.0, 600.0)
        )

    def test_no_texture_mode(self):
        f = GreenOrbsLightField(seed=1, texture_amplitude=0.0)
        assert f._speckle is None
        gs = sample_grid(f, f.region, 21, t=600.0)
        assert np.isfinite(gs.values).all()


class TestTrace:
    def test_make_trace(self, greenorbs_field):
        trace = greenorbs_field.make_trace([600.0, 610.0], resolution=11)
        assert len(trace.frames) == 2
        assert trace.frames[0].values.shape == (11, 11)
        replay = trace.as_field()
        # (20, 20) is a grid point of the 11-point trace, so bilinear
        # replay is exact there.
        direct = greenorbs_field(20.0, 20.0, 600.0)
        assert np.isclose(replay(20.0, 20.0, 600.0), direct, atol=1e-9)
