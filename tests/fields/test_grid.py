"""Tests for bilinear grid fields."""

import numpy as np
import pytest

from repro.fields.base import GridSample, sample_grid
from repro.fields.analytic import PlaneField
from repro.fields.grid import GridField
from repro.geometry.primitives import BoundingBox


def make_grid(values, side=None):
    n = values.shape[0]
    xs = np.linspace(0, side or (n - 1), values.shape[1])
    ys = np.linspace(0, side or (n - 1), values.shape[0])
    return GridSample(xs=xs, ys=ys, values=np.asarray(values, dtype=float))


class TestValidation:
    def test_too_small(self):
        with pytest.raises(ValueError):
            GridField(make_grid(np.zeros((1, 2))))

    def test_nonuniform_spacing(self):
        gs = GridSample(
            xs=np.array([0.0, 1.0, 5.0]),
            ys=np.array([0.0, 1.0, 2.0]),
            values=np.zeros((3, 3)),
        )
        with pytest.raises(ValueError):
            GridField(gs)

    def test_decreasing_axis(self):
        gs = GridSample(
            xs=np.array([2.0, 1.0, 0.0]),
            ys=np.array([0.0, 1.0, 2.0]),
            values=np.zeros((3, 3)),
        )
        with pytest.raises(ValueError):
            GridField(gs)


class TestInterpolation:
    def test_exact_at_grid_points(self, rng):
        values = rng.normal(size=(5, 5))
        field = GridField(make_grid(values))
        for iy in range(5):
            for ix in range(5):
                assert np.isclose(field(float(ix), float(iy)), values[iy, ix])

    def test_bilinear_midpoint(self):
        values = np.array([[0.0, 2.0], [4.0, 6.0]])
        field = GridField(make_grid(values, side=1.0))
        assert np.isclose(field(0.5, 0.5), 3.0)
        assert np.isclose(field(0.5, 0.0), 1.0)

    def test_reproduces_plane_exactly(self):
        plane = PlaneField(a=2.0, b=-1.0, c=3.0)
        reference = sample_grid(plane, BoundingBox.square(10.0), 11)
        field = GridField(reference)
        q = np.random.default_rng(0).uniform(0, 10, size=(50, 2))
        assert np.allclose(field(q[:, 0], q[:, 1]), plane(q[:, 0], q[:, 1]))

    def test_clamped_outside(self):
        values = np.array([[0.0, 1.0], [2.0, 3.0]])
        field = GridField(make_grid(values, side=1.0))
        assert np.isclose(field(-5.0, -5.0), 0.0)
        assert np.isclose(field(10.0, 10.0), 3.0)

    def test_broadcasting(self):
        values = np.arange(9, dtype=float).reshape(3, 3)
        field = GridField(make_grid(values))
        out = field(np.linspace(0, 2, 4)[:, None], np.linspace(0, 2, 4)[None, :])
        assert out.shape == (4, 4)
