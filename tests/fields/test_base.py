"""Tests for field interfaces and grid sampling."""

import numpy as np
import pytest

from repro.fields.analytic import PlaneField
from repro.fields.base import FrozenField, GridSample, sample_grid
from repro.fields.dynamic import DriftingField
from repro.geometry.primitives import BoundingBox


class TestGridSample:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GridSample(
                xs=np.linspace(0, 1, 5),
                ys=np.linspace(0, 1, 4),
                values=np.zeros((5, 4)),  # transposed
            )

    def test_cell_area(self):
        gs = GridSample(
            xs=np.linspace(0, 10, 11),
            ys=np.linspace(0, 20, 11),
            values=np.zeros((11, 11)),
        )
        assert np.isclose(gs.cell_area, 1.0 * 2.0)

    def test_region(self):
        gs = GridSample(
            xs=np.linspace(2, 8, 4), ys=np.linspace(1, 9, 5),
            values=np.zeros((5, 4)),
        )
        region = gs.region
        assert (region.xmin, region.ymin, region.xmax, region.ymax) == (2, 1, 8, 9)

    def test_positions_row_major(self):
        gs = GridSample(
            xs=np.array([0.0, 1.0]), ys=np.array([0.0, 1.0]),
            values=np.zeros((2, 2)),
        )
        pos = gs.positions()
        assert pos.tolist() == [[0, 0], [1, 0], [0, 1], [1, 1]]

    def test_value_at_index_orientation(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        gs = GridSample(
            xs=np.array([0.0, 1.0]), ys=np.array([0.0, 1.0]), values=values
        )
        # (ix=1, iy=0) -> x=1, y=0 -> values[0][1]
        assert gs.value_at_index(1, 0) == 2.0


class TestSampleGrid:
    def test_static_field(self):
        field = PlaneField(a=1.0, b=0.0, c=0.0)  # z = x
        region = BoundingBox.square(10.0)
        gs = sample_grid(field, region, 11)
        assert gs.values.shape == (11, 11)
        assert np.allclose(gs.values[0], np.linspace(0, 10, 11))
        assert np.allclose(gs.values[:, 3], 3.0)

    def test_dynamic_needs_t(self):
        field = DriftingField(PlaneField(a=1.0), velocity=(1.0, 0.0))
        region = BoundingBox.square(10.0)
        with pytest.raises(ValueError):
            sample_grid(field, region, 5)
        gs = sample_grid(field, region, 5, t=2.0)
        assert gs.values.shape == (5, 5)

    def test_static_rejects_t(self):
        with pytest.raises(ValueError):
            sample_grid(PlaneField(), BoundingBox.square(1.0), 5, t=0.0)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            sample_grid(PlaneField(), BoundingBox.square(1.0), 1)


class TestFrozenField:
    def test_freeze(self):
        field = DriftingField(PlaneField(a=1.0), velocity=(1.0, 0.0))
        frozen = field.at(3.0)
        assert isinstance(frozen, FrozenField)
        # z = x - t at t=3
        assert np.isclose(frozen(5.0, 0.0), 2.0)

    def test_sample_positions(self):
        field = PlaneField(a=1.0, b=2.0)
        out = field.sample(np.array([[1.0, 1.0], [2.0, 0.0]]))
        assert np.allclose(out, [3.0, 2.0])

    def test_dynamic_sample(self):
        field = DriftingField(PlaneField(a=1.0), velocity=(1.0, 0.0))
        out = field.sample(np.array([[5.0, 0.0]]), t=1.0)
        assert np.allclose(out, [4.0])
