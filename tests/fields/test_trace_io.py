"""Tests for CSV trace IO (round-trip and malformed-input handling)."""

import numpy as np
import pytest

from repro.fields.base import GridSample
from repro.fields.trace_io import GridTrace, read_trace_csv, write_trace_csv


def make_trace():
    xs = np.linspace(0.0, 2.0, 3)
    ys = np.linspace(0.0, 2.0, 3)
    frames = [
        GridSample(xs=xs, ys=ys, values=np.arange(9, dtype=float).reshape(3, 3)),
        GridSample(xs=xs, ys=ys, values=np.arange(9, dtype=float).reshape(3, 3) + 10),
    ]
    return GridTrace(times=np.array([0.0, 5.0]), frames=frames)


class TestGridTrace:
    def test_validation(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            GridTrace(times=np.array([0.0]), frames=trace.frames)
        with pytest.raises(ValueError):
            GridTrace(times=np.empty(0), frames=[])

    def test_mismatched_frames(self):
        xs = np.linspace(0, 1, 2)
        small = GridSample(xs=xs, ys=xs, values=np.zeros((2, 2)))
        big = GridSample(
            xs=np.linspace(0, 1, 3), ys=np.linspace(0, 1, 3),
            values=np.zeros((3, 3)),
        )
        with pytest.raises(ValueError):
            GridTrace(times=np.array([0.0, 1.0]), frames=[small, big])

    def test_frame_at(self):
        trace = make_trace()
        assert trace.frame_at(0.1) is trace.frames[0]
        assert trace.frame_at(4.9) is trace.frames[1]

    def test_as_field_interpolates(self):
        trace = make_trace()
        field = trace.as_field()
        v0 = field(1.0, 1.0, 0.0)
        v1 = field(1.0, 1.0, 5.0)
        mid = field(1.0, 1.0, 2.5)
        assert np.isclose(mid, 0.5 * (v0 + v1))


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert np.allclose(loaded.times, trace.times)
        for a, b in zip(loaded.frames, trace.frames):
            assert np.allclose(a.values, b.values)
            assert np.allclose(a.xs, b.xs)

    def test_greenorbs_round_trip(self, tmp_path, greenorbs_field):
        trace = greenorbs_field.make_trace([600.0, 615.0], resolution=9)
        path = tmp_path / "go.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert np.allclose(
            loaded.frames[1].values, trace.frames[1].values, atol=1e-6
        )


class TestMalformedInput:
    def write(self, tmp_path, text):
        path = tmp_path / "bad.csv"
        path.write_text(text)
        return path

    def test_missing_header(self, tmp_path):
        path = self.write(tmp_path, "0,0,0,1\n")
        with pytest.raises(ValueError, match="header"):
            read_trace_csv(path)

    def test_empty_file(self, tmp_path):
        path = self.write(tmp_path, "t,x,y,z\n")
        with pytest.raises(ValueError, match="no data"):
            read_trace_csv(path)

    def test_wrong_column_count(self, tmp_path):
        path = self.write(tmp_path, "t,x,y,z\n0,0,0\n")
        with pytest.raises(ValueError, match="4 columns"):
            read_trace_csv(path)

    def test_non_numeric(self, tmp_path):
        path = self.write(tmp_path, "t,x,y,z\n0,0,zero,1\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_trace_csv(path)

    def test_incomplete_grid(self, tmp_path):
        path = self.write(
            tmp_path,
            "t,x,y,z\n0,0,0,1\n0,1,0,2\n0,0,1,3\n",  # missing (1,1)
        )
        with pytest.raises(ValueError, match="complete grid"):
            read_trace_csv(path)

    def test_inconsistent_axes_between_frames(self, tmp_path):
        path = self.write(
            tmp_path,
            "t,x,y,z\n"
            "0,0,0,1\n0,1,0,1\n0,0,1,1\n0,1,1,1\n"
            "5,0,0,1\n5,2,0,1\n5,0,1,1\n5,2,1,1\n",
        )
        with pytest.raises(ValueError, match="different grid"):
            read_trace_csv(path)

    def test_duplicate_cells(self, tmp_path):
        path = self.write(
            tmp_path,
            "t,x,y,z\n0,0,0,1\n0,0,0,2\n0,1,0,1\n0,0,1,1\n",
        )
        with pytest.raises(ValueError):
            read_trace_csv(path)
