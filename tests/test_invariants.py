"""Cross-cutting property-based invariants.

These tie multiple subsystems together: metric equivariances, estimator
symmetries, end-to-end determinism, and the connectivity contracts that
the paper's algorithms promise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcm import lcm_adjustment
from repro.fields.base import GridSample
from repro.surfaces.metrics import volume_difference
from repro.surfaces.quadric import QuadricFitMode, fit_quadric

RC = 10.0


def grid(values, side=10.0):
    values = np.asarray(values, dtype=float)
    xs = np.linspace(0, side, values.shape[1])
    ys = np.linspace(0, side, values.shape[0])
    return GridSample(xs=xs, ys=ys, values=values)


class TestDeltaEquivariance:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.integers(0, 10_000),
    )
    def test_scaling_both_surfaces_scales_delta(self, factor, seed):
        """δ(a·f, a·g) = a·δ(f, g) — δ is homogeneous in field units."""
        rng = np.random.default_rng(seed)
        f = rng.normal(size=(6, 6))
        g = rng.normal(size=(6, 6))
        base = volume_difference(grid(f), grid(g))
        scaled = volume_difference(grid(factor * f), grid(factor * g))
        assert np.isclose(scaled, factor * base, rtol=1e-9)

    @settings(max_examples=30)
    @given(
        st.floats(min_value=-100.0, max_value=100.0),
        st.integers(0, 10_000),
    )
    def test_shared_offset_cancels(self, offset, seed):
        """δ(f + c, g + c) = δ(f, g) — δ ignores a common baseline."""
        rng = np.random.default_rng(seed)
        f = rng.normal(size=(6, 6))
        g = rng.normal(size=(6, 6))
        assert np.isclose(
            volume_difference(grid(f + offset), grid(g + offset)),
            volume_difference(grid(f), grid(g)),
            rtol=1e-9,
            atol=1e-9,
        )


class TestQuadricSymmetries:
    def _disk(self, rng, n=60, radius=5.0):
        angles = rng.uniform(0, 2 * np.pi, n)
        radii = radius * np.sqrt(rng.uniform(0, 1, n))
        return np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])

    @settings(max_examples=20)
    @given(
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.integers(0, 10_000),
    )
    def test_gaussian_curvature_rotation_invariant(self, angle, seed):
        """G = g1·g2 is invariant under rotating the sample cloud."""
        rng = np.random.default_rng(seed)
        pts = self._disk(rng)
        a, b, c = 0.3, -0.15, 0.5
        z = a * pts[:, 0] ** 2 + b * pts[:, 0] * pts[:, 1] + c * pts[:, 1] ** 2
        rot = np.array(
            [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
        )
        rotated = pts @ rot.T
        g_orig = fit_quadric(pts, z).gaussian_curvature()
        g_rot = fit_quadric(rotated, z).gaussian_curvature()
        assert np.isclose(g_orig, g_rot, rtol=1e-6, atol=1e-9)

    @settings(max_examples=20)
    @given(
        st.floats(min_value=-50.0, max_value=50.0),
        st.floats(min_value=-50.0, max_value=50.0),
        st.integers(0, 10_000),
    )
    def test_centered_fit_translation_invariant(self, tx, ty, seed):
        rng = np.random.default_rng(seed)
        pts = self._disk(rng)
        z = 0.2 * pts[:, 0] ** 2 + 0.4 * pts[:, 1] ** 2
        moved = pts + np.array([tx, ty])
        g_orig = fit_quadric(
            pts, z, center=(0.0, 0.0), mode=QuadricFitMode.CENTERED
        ).gaussian_curvature()
        g_moved = fit_quadric(
            moved, z, center=(tx, ty), mode=QuadricFitMode.CENTERED
        ).gaussian_curvature()
        assert np.isclose(g_orig, g_moved, rtol=1e-6, atol=1e-9)


class TestLCMPostconditions:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=-40.0, max_value=40.0),
        st.floats(min_value=-40.0, max_value=40.0),
        st.floats(min_value=-40.0, max_value=40.0),
        st.floats(min_value=-40.0, max_value=40.0),
    )
    def test_after_following_link_is_restored(self, ox, oy, dx, dy):
        own = np.array([ox, oy])
        dest = np.array([dx, dy])
        decision = lcm_adjustment(own, dest, [], RC)
        if decision.must_move:
            assert np.isclose(np.linalg.norm(decision.target - dest), RC)
            # Minimal displacement: the follower never overshoots.
            assert np.linalg.norm(decision.target - own) <= (
                np.linalg.norm(own - dest) + 1e-9
            )
        else:
            assert np.linalg.norm(own - dest) <= RC + 1e-9


class TestEndToEndDeterminism:
    def test_fra_is_a_pure_function(self, greenorbs_reference):
        from repro.core.fra import foresighted_refinement

        a = foresighted_refinement(greenorbs_reference, 25, RC)
        b = foresighted_refinement(greenorbs_reference, 25, RC)
        assert np.array_equal(a.positions, b.positions)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=16, max_value=30), st.integers(0, 100))
    def test_engine_contracts_hold_for_random_configs(self, k, seed):
        """Connectivity + region containment for arbitrary small fleets.

        The paper's connectivity guarantee assumes a *connected* initial
        state (Section 5.2); hypothesis configs whose default grid is
        disconnected are skipped rather than counted as failures.
        """
        from hypothesis import assume

        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.graphs.geometric import unit_disk_graph
        from repro.graphs.traversal import is_connected
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=50.0, seed=seed, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=k, rc=12.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=3.0,
        )
        sim = MobileSimulation(problem, resolution=26)
        assume(is_connected(unit_disk_graph(sim.positions, problem.rc)))
        result = sim.run()
        assert result.always_connected
        for record in result.rounds:
            assert (record.positions >= 0.0).all()
            assert (record.positions <= 50.0).all()

    def test_disconnected_start_does_not_crash(self):
        """A disconnected initial layout degrades, never raises."""
        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=50.0, seed=0, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=9, rc=12.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=3.0,
        )
        result = MobileSimulation(problem, resolution=26).run()
        assert len(result.rounds) == 3
        assert np.isfinite(result.deltas).all()


class TestInterpolationBounds:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=25), st.integers(0, 10_000))
    def test_dt_bounded_by_sample_range_inside_hull(self, n, seed):
        """Piecewise-linear DT never over/undershoots the sample range."""
        from repro.geometry.interpolation import LinearSurfaceInterpolator

        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 50, size=(n, 2))
        values = rng.normal(size=n)
        interp = LinearSurfaceInterpolator(pts, values, extrapolate="nan")
        q = rng.uniform(0, 50, size=(150, 2))
        out = interp(q[:, 0], q[:, 1])
        inside = ~np.isnan(out)
        if inside.any():
            assert out[inside].min() >= values.min() - 1e-9
            assert out[inside].max() <= values.max() + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=20), st.integers(0, 10_000))
    def test_clamped_extrapolation_also_bounded(self, n, seed):
        from repro.geometry.interpolation import LinearSurfaceInterpolator

        rng = np.random.default_rng(seed)
        pts = rng.uniform(20, 30, size=(n, 2))
        values = rng.normal(size=n)
        interp = LinearSurfaceInterpolator(pts, values, extrapolate="clamp")
        q = rng.uniform(0, 50, size=(100, 2))
        out = interp(q[:, 0], q[:, 1])
        assert out.min() >= values.min() - 1e-9
        assert out.max() <= values.max() + 1e-9


class TestEngineEdgeCases:
    def test_single_mobile_node(self):
        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=30.0, seed=5, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=1, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=3.0,
        )
        result = MobileSimulation(problem, resolution=16).run()
        assert len(result.rounds) == 3
        assert result.always_connected  # a single node is trivially connected

    def test_all_nodes_dead_mid_run(self):
        """The engine must survive the fleet dying entirely."""
        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.sim.engine import MobileSimulation
        from repro.sim.failures import NodeFailureSchedule

        field = GreenOrbsLightField(side=30.0, seed=5, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=4, rc=15.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=3.0,
        )
        schedule = NodeFailureSchedule(at={601.0: [0, 1, 2, 3]})
        sim = MobileSimulation(
            problem, resolution=16, failure_schedule=schedule
        )
        first = sim.step()
        assert first.n_alive == 4
        # After the massacre, rounds still complete; with no samplers the
        # reconstruction is undefined and delta is reported as NaN.
        later = sim.step()
        assert later.n_alive == 0
        assert np.isnan(later.delta)
