"""Tests for piecewise-linear surface evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.delaunay import DelaunayTriangulation
from repro.geometry.interpolation import (
    LinearSurfaceInterpolator,
    barycentric_coordinates,
)


def plane(x, y):
    return 2.0 * x - 3.0 * y + 1.0


class TestBarycentric:
    def test_centroid(self):
        w = barycentric_coordinates((1, 1), (0, 0), (3, 0), (0, 3))
        assert np.allclose(w, (1 / 3, 1 / 3, 1 / 3))


class TestExactness:
    def test_reproduces_plane_exactly(self, rng):
        pts = rng.uniform(0, 10, size=(20, 2))
        values = plane(pts[:, 0], pts[:, 1])
        interp = LinearSurfaceInterpolator(pts, values)
        # Query inside the hull.
        q = rng.uniform(2, 8, size=(50, 2))
        assert np.allclose(interp(q[:, 0], q[:, 1]), plane(q[:, 0], q[:, 1]))

    def test_interpolates_vertices_exactly(self, rng):
        pts = rng.uniform(0, 10, size=(15, 2))
        values = rng.normal(size=15)
        interp = LinearSurfaceInterpolator(pts, values)
        assert np.allclose(interp(pts[:, 0], pts[:, 1]), values, atol=1e-9)

    def test_scalar_query(self):
        interp = LinearSurfaceInterpolator(
            np.array([[0, 0], [2, 0], [0, 2]]), np.array([0.0, 2.0, 2.0])
        )
        out = interp(1.0, 0.5)
        assert isinstance(out, float)
        assert np.isclose(out, 1.5)

    def test_scipy_cross_validation(self, rng):
        from scipy.interpolate import LinearNDInterpolator

        pts = rng.uniform(0, 100, size=(40, 2))
        values = np.sin(pts[:, 0] / 10) + np.cos(pts[:, 1] / 7)
        ours = LinearSurfaceInterpolator(pts, values, extrapolate="nan")
        theirs = LinearNDInterpolator(pts, values)
        q = rng.uniform(10, 90, size=(200, 2))
        a = ours(q[:, 0], q[:, 1])
        b = theirs(q[:, 0], q[:, 1])
        both = ~(np.isnan(a) | np.isnan(b))
        assert both.mean() > 0.9
        assert np.allclose(a[both], b[both], atol=1e-6)


class TestExtrapolation:
    def test_nan_mode(self):
        interp = LinearSurfaceInterpolator(
            np.array([[0, 0], [2, 0], [0, 2]]),
            np.array([1.0, 1.0, 1.0]),
            extrapolate="nan",
        )
        assert np.isnan(interp(10.0, 10.0))

    def test_clamp_mode_is_finite_everywhere(self, rng):
        pts = rng.uniform(40, 60, size=(10, 2))
        interp = LinearSurfaceInterpolator(pts, rng.normal(size=10))
        grid = interp.evaluate_grid(np.linspace(0, 100, 21), np.linspace(0, 100, 21))
        assert np.isfinite(grid).all()

    def test_clamp_constant_surface(self, rng):
        pts = rng.uniform(40, 60, size=(10, 2))
        interp = LinearSurfaceInterpolator(pts, np.full(10, 7.0))
        assert np.isclose(interp(0.0, 0.0), 7.0)
        assert np.isclose(interp(99.0, 1.0), 7.0)

    def test_clamp_continuous_at_hull(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        interp = LinearSurfaceInterpolator(pts, np.array([0.0, 10.0, 20.0]))
        inside = interp(5.0, 0.0)
        just_outside = interp(5.0, -1e-6)
        assert np.isclose(inside, just_outside, atol=1e-3)

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(
                np.zeros((3, 2)), np.zeros(3), extrapolate="wild"
            )


class TestDegenerateInputs:
    def test_single_point_nearest(self):
        interp = LinearSurfaceInterpolator(np.array([[5.0, 5.0]]), np.array([3.0]))
        assert interp(0.0, 0.0) == 3.0

    def test_collinear_points_nearest(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        interp = LinearSurfaceInterpolator(pts, np.array([1.0, 2.0, 3.0]))
        assert interp(2.1, 2.1) == 3.0

    def test_duplicate_points_collapsed(self):
        pts = np.array([[0, 0], [0, 0], [4, 0], [0, 4]], dtype=float)
        vals = np.array([1.0, 99.0, 2.0, 3.0])
        interp = LinearSurfaceInterpolator(pts, vals)
        # First value wins for the duplicate.
        assert np.isclose(interp(0.0, 0.0), 1.0)

    def test_zero_samples_raises(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(np.empty((0, 2)), np.empty(0))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(np.zeros((3, 2)), np.zeros(4))

    def test_index_out_of_range_raises(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(
                np.zeros((3, 2)), np.zeros(3), triangulation=np.array([[0, 1, 7]])
            )


class TestGridEvaluation:
    def test_grid_shape_and_orientation(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        values = pts[:, 1]  # z = y
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(0, 10, 5)
        ys = np.linspace(0, 10, 3)
        grid = interp.evaluate_grid(xs, ys)
        assert grid.shape == (3, 5)
        assert np.allclose(grid[0], 0.0)   # first row = ys[0] = 0
        assert np.allclose(grid[-1], 10.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=30))
    def test_grid_matches_pointwise(self, n):
        rng = np.random.default_rng(n)
        pts = rng.uniform(0, 20, size=(n, 2))
        values = rng.normal(size=n)
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(0, 20, 7)
        ys = np.linspace(0, 20, 6)
        grid = interp.evaluate_grid(xs, ys)
        for iy, y in enumerate(ys):
            for ix, x in enumerate(xs):
                assert np.isclose(grid[iy, ix], interp(x, y), atol=1e-9)


class TestFastPathVsReference:
    """PR-2 property tests: rasterised/pruned fast paths vs the oracles.

    The fast grid path (`evaluate_grid`) and the block-pruned
    extrapolation search are designed to reproduce the reference
    algorithms' floating-point results exactly; these tests pin the four
    query regimes — strictly inside the hull, on edges/vertices, outside
    (clamp extrapolation, both dense and pruned search), and degenerate
    sample sets — to within 1e-9 of the reference, and bit-for-bit where
    the design promises it.
    """

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_inside_hull(self, seed):
        rng = np.random.default_rng(seed)
        pts = np.vstack([
            [[0.0, 0.0], [100.0, 0.0], [100.0, 100.0], [0.0, 100.0]],
            rng.uniform(0, 100, size=(20, 2)),
        ])
        values = rng.normal(size=len(pts))
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(5.0, 95.0, 31)   # strictly interior
        ys = np.linspace(5.0, 95.0, 29)
        fast = interp.evaluate_grid(xs, ys)
        ref = interp.evaluate_grid_reference(xs, ys)
        assert np.all(np.abs(fast - ref) <= 1e-9)
        # The rasteriser replays the reference's weight arithmetic and
        # first-claimant tie rule, so the match is in fact exact.
        assert np.array_equal(fast, ref)

    def test_on_edges_and_vertices(self):
        # Samples on an integer lattice; query the lattice itself, so
        # every query sits exactly on a vertex or a triangle edge.
        xs0 = np.arange(0.0, 6.0)
        pts = np.array([(x, y) for x in xs0 for y in xs0])
        rng = np.random.default_rng(7)
        values = rng.normal(size=len(pts))
        interp = LinearSurfaceInterpolator(pts, values)
        mids = np.arange(0.0, 5.5, 0.5)   # vertices + edge midpoints
        fast = interp.evaluate_grid(mids, mids)
        ref = interp.evaluate_grid_reference(mids, mids)
        assert np.array_equal(fast, ref)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_outside_clamp_dense_search(self, seed):
        # Hull confined to the middle of the region; the surrounding grid
        # cells all extrapolate. Small enough workload that the dense
        # winner scan runs.
        rng = np.random.default_rng(seed)
        pts = rng.uniform(40, 60, size=(12, 2))
        values = rng.normal(size=len(pts))
        interp = LinearSurfaceInterpolator(pts, values)
        qx = rng.uniform(0, 100, size=200)
        qy = rng.uniform(0, 100, size=200)
        fast = interp._extrapolate_clamped(qx, qy)
        ref = interp._extrapolate_clamped_reference(qx, qy)
        assert np.all(np.abs(fast - ref) <= 1e-9)
        assert np.array_equal(fast, ref)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_outside_clamp_pruned_search(self, seed):
        # Large triangle count x query count pushes _extrapolate_clamped
        # over _DENSE_EXTRAP_MAX into the block-pruned search.
        from repro.geometry import interpolation as interp_mod

        rng = np.random.default_rng(seed)
        pts = rng.uniform(30, 70, size=(100, 2))
        values = rng.normal(size=len(pts))
        interp = LinearSurfaceInterpolator(pts, values)
        qx = rng.uniform(0, 100, size=2500)
        qy = rng.uniform(0, 100, size=2500)
        m = len(interp.simplices)
        assert m * len(qx) > interp_mod._DENSE_EXTRAP_MAX  # pruned regime
        fast = interp._extrapolate_clamped(qx, qy)
        ref = interp._extrapolate_clamped_reference(qx, qy)
        assert np.all(np.abs(fast - ref) <= 1e-9)
        assert np.array_equal(fast, ref)

    def test_degenerate_collinear_nearest(self):
        # Collinear samples build no triangles: both paths fall back to
        # nearest-sample. evaluate_grid must agree with the reference.
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 10.0]])
        values = np.array([1.0, 2.0, 3.0])
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(0, 10, 9)
        fast = interp.evaluate_grid(xs, xs)
        ref = interp.evaluate_grid_reference(xs, xs)
        assert np.array_equal(fast, ref)
        assert np.array_equal(fast[0, :3], np.array([1.0, 1.0, 1.0]))

    def test_degenerate_sliver_triangles(self):
        # Nearly-collinear jitter produces sliver triangles that the
        # constructor drops; the survivors must still evaluate identically
        # on both paths, including the extrapolated margin.
        rng = np.random.default_rng(11)
        x = np.linspace(0, 10, 12)
        pts = np.column_stack([x, 2.0 * x + rng.normal(0, 1e-9, size=len(x))])
        pts = np.vstack([pts, [[5.0, 30.0]]])  # one point off the line
        values = rng.normal(size=len(pts))
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(-2, 12, 15)
        fast = interp.evaluate_grid(xs, xs)
        ref = interp.evaluate_grid_reference(xs, xs)
        assert np.array_equal(fast, ref)
