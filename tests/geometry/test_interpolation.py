"""Tests for piecewise-linear surface evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.delaunay import DelaunayTriangulation
from repro.geometry.interpolation import (
    LinearSurfaceInterpolator,
    barycentric_coordinates,
)


def plane(x, y):
    return 2.0 * x - 3.0 * y + 1.0


class TestBarycentric:
    def test_centroid(self):
        w = barycentric_coordinates((1, 1), (0, 0), (3, 0), (0, 3))
        assert np.allclose(w, (1 / 3, 1 / 3, 1 / 3))


class TestExactness:
    def test_reproduces_plane_exactly(self, rng):
        pts = rng.uniform(0, 10, size=(20, 2))
        values = plane(pts[:, 0], pts[:, 1])
        interp = LinearSurfaceInterpolator(pts, values)
        # Query inside the hull.
        q = rng.uniform(2, 8, size=(50, 2))
        assert np.allclose(interp(q[:, 0], q[:, 1]), plane(q[:, 0], q[:, 1]))

    def test_interpolates_vertices_exactly(self, rng):
        pts = rng.uniform(0, 10, size=(15, 2))
        values = rng.normal(size=15)
        interp = LinearSurfaceInterpolator(pts, values)
        assert np.allclose(interp(pts[:, 0], pts[:, 1]), values, atol=1e-9)

    def test_scalar_query(self):
        interp = LinearSurfaceInterpolator(
            np.array([[0, 0], [2, 0], [0, 2]]), np.array([0.0, 2.0, 2.0])
        )
        out = interp(1.0, 0.5)
        assert isinstance(out, float)
        assert np.isclose(out, 1.5)

    def test_scipy_cross_validation(self, rng):
        from scipy.interpolate import LinearNDInterpolator

        pts = rng.uniform(0, 100, size=(40, 2))
        values = np.sin(pts[:, 0] / 10) + np.cos(pts[:, 1] / 7)
        ours = LinearSurfaceInterpolator(pts, values, extrapolate="nan")
        theirs = LinearNDInterpolator(pts, values)
        q = rng.uniform(10, 90, size=(200, 2))
        a = ours(q[:, 0], q[:, 1])
        b = theirs(q[:, 0], q[:, 1])
        both = ~(np.isnan(a) | np.isnan(b))
        assert both.mean() > 0.9
        assert np.allclose(a[both], b[both], atol=1e-6)


class TestExtrapolation:
    def test_nan_mode(self):
        interp = LinearSurfaceInterpolator(
            np.array([[0, 0], [2, 0], [0, 2]]),
            np.array([1.0, 1.0, 1.0]),
            extrapolate="nan",
        )
        assert np.isnan(interp(10.0, 10.0))

    def test_clamp_mode_is_finite_everywhere(self, rng):
        pts = rng.uniform(40, 60, size=(10, 2))
        interp = LinearSurfaceInterpolator(pts, rng.normal(size=10))
        grid = interp.evaluate_grid(np.linspace(0, 100, 21), np.linspace(0, 100, 21))
        assert np.isfinite(grid).all()

    def test_clamp_constant_surface(self, rng):
        pts = rng.uniform(40, 60, size=(10, 2))
        interp = LinearSurfaceInterpolator(pts, np.full(10, 7.0))
        assert np.isclose(interp(0.0, 0.0), 7.0)
        assert np.isclose(interp(99.0, 1.0), 7.0)

    def test_clamp_continuous_at_hull(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        interp = LinearSurfaceInterpolator(pts, np.array([0.0, 10.0, 20.0]))
        inside = interp(5.0, 0.0)
        just_outside = interp(5.0, -1e-6)
        assert np.isclose(inside, just_outside, atol=1e-3)

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(
                np.zeros((3, 2)), np.zeros(3), extrapolate="wild"
            )


class TestDegenerateInputs:
    def test_single_point_nearest(self):
        interp = LinearSurfaceInterpolator(np.array([[5.0, 5.0]]), np.array([3.0]))
        assert interp(0.0, 0.0) == 3.0

    def test_collinear_points_nearest(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        interp = LinearSurfaceInterpolator(pts, np.array([1.0, 2.0, 3.0]))
        assert interp(2.1, 2.1) == 3.0

    def test_duplicate_points_collapsed(self):
        pts = np.array([[0, 0], [0, 0], [4, 0], [0, 4]], dtype=float)
        vals = np.array([1.0, 99.0, 2.0, 3.0])
        interp = LinearSurfaceInterpolator(pts, vals)
        # First value wins for the duplicate.
        assert np.isclose(interp(0.0, 0.0), 1.0)

    def test_zero_samples_raises(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(np.empty((0, 2)), np.empty(0))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(np.zeros((3, 2)), np.zeros(4))

    def test_index_out_of_range_raises(self):
        with pytest.raises(ValueError):
            LinearSurfaceInterpolator(
                np.zeros((3, 2)), np.zeros(3), triangulation=np.array([[0, 1, 7]])
            )


class TestGridEvaluation:
    def test_grid_shape_and_orientation(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        values = pts[:, 1]  # z = y
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(0, 10, 5)
        ys = np.linspace(0, 10, 3)
        grid = interp.evaluate_grid(xs, ys)
        assert grid.shape == (3, 5)
        assert np.allclose(grid[0], 0.0)   # first row = ys[0] = 0
        assert np.allclose(grid[-1], 10.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=30))
    def test_grid_matches_pointwise(self, n):
        rng = np.random.default_rng(n)
        pts = rng.uniform(0, 20, size=(n, 2))
        values = rng.normal(size=n)
        interp = LinearSurfaceInterpolator(pts, values)
        xs = np.linspace(0, 20, 7)
        ys = np.linspace(0, 20, 6)
        grid = interp.evaluate_grid(xs, ys)
        for iy, y in enumerate(ys):
            for ix, x in enumerate(xs):
                assert np.isclose(grid[iy, ix], interp(x, y), atol=1e-9)
