"""Tests for convex hull and hull projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hull import (
    convex_hull,
    hull_area,
    point_in_convex_polygon,
    project_onto_convex_polygon,
    project_onto_segment,
)
from repro.geometry.predicates import orientation
from repro.geometry.primitives import Point2

# Coordinates are quantised to 1e-6: the library targets metre-scale
# regions, and subnormal-magnitude inputs (1e-213) make any epsilon-based
# orientation test inconsistent between hull construction and containment.
coord = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False).map(
    lambda v: round(v, 6)
)
points_strategy = st.lists(st.tuples(coord, coord), min_size=1, max_size=40)


class TestConvexHull:
    def test_square(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Point2(1, 1) not in hull

    def test_collinear_input(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert hull == [Point2(0, 0), Point2(3, 3)]

    def test_duplicates_removed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (1, 0), (0, 1)])
        assert len(hull) == 3

    def test_small_inputs(self):
        assert convex_hull([(1, 2)]) == [Point2(1, 2)]
        assert len(convex_hull([(1, 2), (3, 4)])) == 2

    @settings(max_examples=50)
    @given(points_strategy)
    def test_hull_is_convex_and_contains_all(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        # Counter-clockwise convexity.
        n = len(hull)
        for i in range(n):
            assert orientation(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]) >= 0
        for p in pts:
            assert point_in_convex_polygon(p, hull, eps=1e-6)

    def test_scipy_cross_validation(self, rng):
        from scipy.spatial import ConvexHull as SciHull

        pts = rng.uniform(0, 100, size=(60, 2))
        ours = convex_hull(pts)
        sci = SciHull(pts)
        assert len(ours) == len(sci.vertices)
        assert np.isclose(hull_area(ours), sci.volume)


class TestProjection:
    def test_project_onto_segment(self):
        assert project_onto_segment((1, 1), (0, 0), (2, 0)) == Point2(1, 0)
        assert project_onto_segment((-5, 3), (0, 0), (2, 0)) == Point2(0, 0)
        assert project_onto_segment((9, -2), (0, 0), (2, 0)) == Point2(2, 0)
        assert project_onto_segment((3, 3), (1, 1), (1, 1)) == Point2(1, 1)

    def test_inside_unchanged(self):
        hull = [Point2(0, 0), Point2(4, 0), Point2(4, 4), Point2(0, 4)]
        assert project_onto_convex_polygon((2, 2), hull) == Point2(2, 2)

    def test_outside_projects_to_edge(self):
        hull = [Point2(0, 0), Point2(4, 0), Point2(4, 4), Point2(0, 4)]
        assert project_onto_convex_polygon((2, -3), hull) == Point2(2, 0)
        assert project_onto_convex_polygon((7, 7), hull) == Point2(4, 4)

    def test_empty_hull_raises(self):
        with pytest.raises(ValueError):
            project_onto_convex_polygon((0, 0), [])

    def test_degenerate_hulls(self):
        assert project_onto_convex_polygon((5, 5), [(1, 1)]) == Point2(1, 1)
        assert project_onto_convex_polygon((5, 5), [(0, 0), (2, 0)]) == Point2(2, 0)


class TestHullArea:
    def test_unit_square(self):
        assert hull_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == 1.0

    def test_degenerate(self):
        assert hull_area([(0, 0), (1, 1)]) == 0.0
