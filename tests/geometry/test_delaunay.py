"""Tests for the incremental Bowyer-Watson Delaunay triangulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.delaunay import (
    DelaunayTriangulation,
    DuplicatePointError,
    Triangle,
)
from repro.geometry.predicates import orientation


class TestTriangle:
    def test_edges(self):
        t = Triangle(0, 1, 2)
        assert frozenset((0, 1)) in t.edges()
        assert frozenset((1, 2)) in t.edges()
        assert frozenset((2, 0)) in t.edges()

    def test_has_vertex(self):
        t = Triangle(3, 5, 9)
        assert t.has_vertex(5)
        assert not t.has_vertex(4)


class TestBasics:
    def test_empty(self):
        dt = DelaunayTriangulation()
        assert dt.n_points == 0
        assert dt.triangles == []
        assert dt.simplices.shape == (0, 3)

    def test_single_triangle(self):
        dt = DelaunayTriangulation([(0, 0), (10, 0), (0, 10)])
        assert dt.n_points == 3
        assert len(dt.triangles) == 1
        tri = dt.triangles[0]
        pts = dt.points
        assert orientation(pts[tri.a], pts[tri.b], pts[tri.c]) == 1  # CCW

    def test_square_two_triangles(self):
        dt = DelaunayTriangulation([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert len(dt.triangles) == 2
        assert len(dt.edges()) == 5  # 4 sides + 1 diagonal

    def test_duplicate_raises(self):
        dt = DelaunayTriangulation([(0, 0), (1, 0)])
        with pytest.raises(DuplicatePointError):
            dt.insert((0, 0))

    def test_skip_duplicates(self):
        dt = DelaunayTriangulation(skip_duplicates=True)
        i = dt.insert((0, 0))
        j = dt.insert((0, 0))
        assert i == j == 0
        assert dt.n_points == 1

    def test_point_accessor(self):
        dt = DelaunayTriangulation([(1, 2), (3, 4)])
        assert tuple(dt.point(0)) == (1.0, 2.0)
        with pytest.raises(IndexError):
            dt.point(2)

    def test_out_of_span_raises(self):
        dt = DelaunayTriangulation(span=10.0)
        with pytest.raises(ValueError):
            dt.insert((1e9, 1e9))

    def test_repr(self):
        dt = DelaunayTriangulation([(0, 0), (1, 0), (0, 1)])
        assert "n_points=3" in repr(dt)


class TestDelaunayProperty:
    def test_random_points_are_delaunay(self, rng):
        pts = rng.uniform(0, 100, size=(40, 2))
        dt = DelaunayTriangulation(pts)
        assert dt.is_delaunay(eps=1e-5)

    def test_grid_points(self):
        # Cocircular grid points: any valid Delaunay triangulation is fine.
        pts = [(float(x), float(y)) for x in range(5) for y in range(5)]
        dt = DelaunayTriangulation(pts)
        assert dt.n_points == 25
        # Euler: for n points with h on the hull, triangles = 2n - h - 2.
        assert len(dt.triangles) == 2 * 25 - 16 - 2

    def test_scipy_triangle_count(self, rng):
        from scipy.spatial import Delaunay as SciDT

        pts = rng.uniform(0, 100, size=(80, 2))
        ours = DelaunayTriangulation(pts)
        theirs = SciDT(pts)
        assert len(ours.triangles) == len(theirs.simplices)

    def test_scipy_edge_sets_match(self, rng):
        from scipy.spatial import Delaunay as SciDT

        pts = rng.uniform(0, 100, size=(50, 2))
        ours = DelaunayTriangulation(pts)
        theirs = SciDT(pts)
        sci_edges = set()
        for simplex in theirs.simplices:
            a, b, c = sorted(int(v) for v in simplex)
            sci_edges |= {(a, b), (b, c), (a, c)}
        assert set(ours.edges()) == sci_edges

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=3,
            max_size=25,
            unique=True,
        )
    )
    def test_property_all_inputs_delaunay(self, pts):
        dt = DelaunayTriangulation(skip_duplicates=True)
        for p in pts:
            dt.insert(p)
        assert dt.is_delaunay(eps=1e-4)

    def test_point_on_existing_edge(self):
        # Hypothesis-found regression: a non-duplicate point lying exactly
        # on an existing (near-degenerate, collinear) edge is strictly
        # inside no circumcircle, so the strict cavity scan came up empty
        # and insert() wrongly raised "outside the working area". The
        # closed-circumdisk fallback must absorb it instead.
        pts = [(0.0, 0.0), (0.0, 1e-05), (0.0, 5.960464477539063e-08)]
        dt = DelaunayTriangulation(skip_duplicates=True)
        for p in pts:
            dt.insert(p)
        assert dt.n_points == 3
        assert dt.is_delaunay(eps=1e-4)

    def test_collinear_midpoint_insert(self):
        dt = DelaunayTriangulation(skip_duplicates=True)
        for p in [(0.0, 0.0), (2.0, 0.0), (1.0, 0.0), (1.0, 1.0)]:
            dt.insert(p)
        assert dt.n_points == 4
        assert dt.is_delaunay(eps=1e-4)

    def test_incremental_matches_batch(self, rng):
        pts = rng.uniform(0, 50, size=(30, 2))
        batch = DelaunayTriangulation(pts)
        incremental = DelaunayTriangulation()
        for p in pts:
            incremental.insert(p)
        assert set(batch.edges()) == set(incremental.edges())


class TestLocate:
    def test_inside(self):
        dt = DelaunayTriangulation([(0, 0), (10, 0), (0, 10)])
        tri = dt.locate((2, 2))
        assert tri is not None

    def test_outside_hull(self):
        dt = DelaunayTriangulation([(0, 0), (10, 0), (0, 10)])
        assert dt.locate((50, 50)) is None

    def test_on_vertex(self):
        dt = DelaunayTriangulation([(0, 0), (10, 0), (0, 10), (10, 10)])
        assert dt.locate((0, 0)) is not None


class TestCircumcircleCache:
    """PR-2: the cached r²-based bad-triangle test vs the determinant oracle."""

    def _assert_cache_matches(self, pts, queries):
        dt = DelaunayTriangulation(pts)
        for q in queries:
            fast = dt._bad_triangle_slots(q[0], q[1])
            ref = dt._bad_triangle_slots_reference(q[0], q[1])
            assert np.array_equal(fast, ref)

    def test_uniform_points(self, rng):
        pts = rng.uniform(0, 100, size=(60, 2))
        self._assert_cache_matches(pts, rng.uniform(0, 100, size=(200, 2)))

    def test_clustered_points(self, rng):
        # Late-round CMA layouts cluster nodes tightly; near-cocircular
        # and sliver configurations stress the cached threshold most.
        centres = rng.uniform(20, 80, size=(6, 2))
        pts = np.vstack([
            c + rng.normal(0, 0.4, size=(12, 2)) for c in centres
        ])
        queries = np.vstack([
            rng.uniform(0, 100, size=(100, 2)),
            pts + rng.normal(0, 0.05, size=pts.shape),  # near-vertex probes
        ])
        self._assert_cache_matches(pts, queries)

    def test_incremental_build_stays_delaunay(self, rng):
        dt = DelaunayTriangulation()
        pts = rng.uniform(0, 100, size=(50, 2))
        for p in pts:
            dt.insert(p)
        assert dt.is_delaunay(eps=1e-6)

    def test_clustered_vs_scipy_edges(self, rng):
        from scipy.spatial import Delaunay as SciDT

        centres = rng.uniform(25, 75, size=(5, 2))
        pts = np.vstack([
            c + rng.normal(0, 2.0, size=(10, 2)) for c in centres
        ])
        ours = DelaunayTriangulation(pts)
        theirs = SciDT(pts)
        sci_edges = set()
        for simplex in theirs.simplices:
            a, b, c = sorted(int(v) for v in simplex)
            sci_edges |= {(a, b), (b, c), (a, c)}
        assert set(ours.edges()) == sci_edges
        assert ours.is_delaunay(eps=1e-6)
