"""Differential tests of the cell-list spatial hash against the dense oracle.

``SpatialHashGrid`` promises *bit-identity* with the
``pairwise_distances(pts) <= r`` formulation it replaces — same pairs,
same distances to the last ulp, same orderings — so every test here
compares against that dense expression rather than against tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.primitives import pairwise_distances
from repro.geometry.spatial_index import (
    SpatialHashGrid,
    radius_adjacency,
    radius_neighbor_lists,
)

RADIUS = 5.0

float_points = st.lists(
    st.tuples(
        st.floats(0.0, 30.0, allow_nan=False),
        st.floats(0.0, 30.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)
int_points = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=1,
    max_size=30,
)


def oracle_pairs(pts, radius):
    """(lo, hi, d) of all in-range pairs from the dense distance matrix."""
    dm = pairwise_distances(pts)
    lo, hi = np.nonzero(np.triu(dm <= radius, k=1))
    return lo, hi, dm[lo, hi]


def oracle_adjacency(pts, radius):
    adj = pairwise_distances(pts) <= radius
    np.fill_diagonal(adj, False)
    return adj


class TestQueryPairs:
    @given(points=float_points)
    def test_matches_oracle_bitwise(self, points):
        pts = np.asarray(points, dtype=float)
        lo, hi, d = SpatialHashGrid(pts, RADIUS).query_pairs(
            return_distances=True
        )
        olo, ohi, od = oracle_pairs(pts, RADIUS)
        assert np.array_equal(lo, olo)
        assert np.array_equal(hi, ohi)
        assert np.array_equal(d, od)  # bitwise, not allclose

    @given(points=int_points)
    def test_exact_boundary_grid(self, points):
        """Integer coordinates: (0,0)-(3,4) style pairs land exactly on r."""
        pts = np.asarray(points, dtype=float)
        lo, hi = SpatialHashGrid(pts, RADIUS).query_pairs()
        olo, ohi, _ = oracle_pairs(pts, RADIUS)
        assert np.array_equal(lo, olo) and np.array_equal(hi, ohi)

    def test_exactly_at_radius_included(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        lo, hi, d = SpatialHashGrid(pts, RADIUS).query_pairs(
            return_distances=True
        )
        assert lo.tolist() == [0] and hi.tolist() == [1]
        assert d[0] == 5.0

    def test_just_past_radius_excluded(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0 + 1e-9]])
        lo, hi = SpatialHashGrid(pts, RADIUS).query_pairs()
        assert lo.size == 0 and hi.size == 0

    @given(points=float_points)
    def test_duplicate_points_pair_up(self, points):
        """Coincident points are distinct indices at distance 0."""
        pts = np.asarray(points, dtype=float)
        pts = np.vstack([pts, pts[:1], pts[:1]])  # two extra copies of row 0
        lo, hi, d = SpatialHashGrid(pts, RADIUS).query_pairs(
            return_distances=True
        )
        olo, ohi, od = oracle_pairs(pts, RADIUS)
        assert np.array_equal(lo, olo)
        assert np.array_equal(hi, ohi)
        assert np.array_equal(d, od)

    def test_large_random_cloud(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 200, size=(500, 2))
        lo, hi, d = SpatialHashGrid(pts, RADIUS).query_pairs(
            return_distances=True
        )
        olo, ohi, od = oracle_pairs(pts, RADIUS)
        assert np.array_equal(lo, olo)
        assert np.array_equal(hi, ohi)
        assert np.array_equal(d, od)


class TestQueryRadius:
    @given(points=float_points, data=st.data())
    def test_matches_oracle(self, points, data):
        pts = np.asarray(points, dtype=float)
        cx = data.draw(st.floats(-5.0, 35.0, allow_nan=False))
        cy = data.draw(st.floats(-5.0, 35.0, allow_nan=False))
        got = SpatialHashGrid(pts, RADIUS).query_radius((cx, cy))
        diff = pts - np.array([cx, cy])
        want = np.flatnonzero(np.sqrt((diff**2).sum(axis=1)) <= RADIUS)
        assert np.array_equal(got, want)

    def test_far_outside_cloud_is_empty(self):
        pts = np.zeros((4, 2))
        assert SpatialHashGrid(pts, RADIUS).query_radius((1e6, 1e6)).size == 0


class TestAdjacencyAndLists:
    @given(points=float_points)
    def test_adjacency_matches_dense(self, points):
        pts = np.asarray(points, dtype=float)
        assert np.array_equal(
            radius_adjacency(pts, RADIUS), oracle_adjacency(pts, RADIUS)
        )

    def test_adjacency_above_crossover(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 60, size=(150, 2))  # forces the grid branch
        assert np.array_equal(
            radius_adjacency(pts, RADIUS), oracle_adjacency(pts, RADIUS)
        )

    @given(points=float_points, data=st.data())
    def test_neighbor_lists_match_masked_dense(self, points, data):
        pts = np.asarray(points, dtype=float)
        alive = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=len(pts),
                    max_size=len(pts),
                )
            )
        )
        got = SpatialHashGrid(pts, RADIUS).neighbor_lists(alive=alive)
        adj = oracle_adjacency(pts, RADIUS)
        adj[~alive, :] = False
        adj[:, ~alive] = False
        want = [np.flatnonzero(row).tolist() for row in adj]
        assert got == want

    def test_radius_neighbor_lists_helper(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 40, size=(90, 2))
        got = radius_neighbor_lists(pts, RADIUS)
        want = [
            np.flatnonzero(row).tolist()
            for row in oracle_adjacency(pts, RADIUS)
        ]
        assert got == want


class TestValidation:
    def test_empty_and_single(self):
        for pts in (np.empty((0, 2)), np.array([[1.0, 2.0]])):
            grid = SpatialHashGrid(pts, RADIUS)
            lo, hi = grid.query_pairs()
            assert lo.size == 0 and hi.size == 0

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            SpatialHashGrid(np.zeros((2, 2)), 0.0)
        with pytest.raises(ValueError):
            SpatialHashGrid(np.zeros((2, 2)), -1.0)

    def test_counters_populated(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 50, size=(120, 2))
        grid = SpatialHashGrid(pts, RADIUS)
        grid.query_pairs()
        assert grid.n_cells > 0
        assert grid.pairs_checked > 0


class TestDenseCrossoverOverride:
    """The dense/cell-list switch point is an overridable parameter."""

    def _counts(self):
        # Count grid builds via the geom.grid_cells counter side effect:
        # the dense path never constructs a SpatialHashGrid.
        from repro.obs import Instrumentation, use_instrumentation

        return Instrumentation.in_memory(), use_instrumentation

    def test_keyword_beats_everything(self, monkeypatch):
        from repro.geometry import spatial_index

        monkeypatch.setenv(spatial_index.DENSE_CROSSOVER_ENV, "1")
        assert spatial_index.dense_crossover(override=500) == 500

    def test_env_var_beats_default(self, monkeypatch):
        from repro.geometry import spatial_index

        monkeypatch.setenv(spatial_index.DENSE_CROSSOVER_ENV, "7")
        assert spatial_index.dense_crossover() == 7
        assert spatial_index.dense_crossover(default=123) == 7

    def test_default_falls_through_to_module_constant(self, monkeypatch):
        from repro.geometry import spatial_index

        monkeypatch.delenv(spatial_index.DENSE_CROSSOVER_ENV, raising=False)
        assert spatial_index.dense_crossover() == spatial_index.DENSE_CROSSOVER
        assert spatial_index.dense_crossover(default=42) == 42

    def test_module_global_monkeypatch_still_works(self, monkeypatch):
        """The pre-existing tuning seam — patching a caller's module
        global — keeps working because callers pass it as ``default``."""
        from repro.geometry import spatial_index

        monkeypatch.delenv(spatial_index.DENSE_CROSSOVER_ENV, raising=False)
        monkeypatch.setattr(spatial_index, "DENSE_CROSSOVER", 3)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 30, size=(20, 2))
        # 20 > 3: the cell-list path runs and matches the dense oracle.
        dense = pairwise_distances(pts) <= RADIUS
        np.fill_diagonal(dense, False)
        np.testing.assert_array_equal(radius_adjacency(pts, RADIUS), dense)

    def test_crossover_keyword_selects_path_bitwise_identically(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 30, size=(50, 2))
        forced_dense = radius_adjacency(pts, RADIUS, crossover=10**9)
        forced_grid = radius_adjacency(pts, RADIUS, crossover=0)
        np.testing.assert_array_equal(forced_dense, forced_grid)

    def test_env_var_selects_cell_list_path(self, monkeypatch):
        """REPRO_DENSE_CROSSOVER=0 forces the cell-list radio path even
        for a cloud far below the built-in crossover (observable via the
        grid-build counters only that path emits)."""
        from repro.geometry import spatial_index
        from repro.obs import Instrumentation, use_instrumentation
        from repro.sim.radio import Radio

        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 30, size=(30, 2))
        monkeypatch.setenv(spatial_index.DENSE_CROSSOVER_ENV, "0")
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            forced = Radio(RADIUS).neighbor_ids(pts)
        assert obs.counter("geom.grid_cells").value > 0
        monkeypatch.delenv(spatial_index.DENSE_CROSSOVER_ENV)
        assert Radio(RADIUS).neighbor_ids(pts) == forced

    def test_radio_crossover_parameter(self):
        from repro.sim.radio import Radio

        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 30, size=(40, 2))
        default = Radio(RADIUS).neighbor_ids(pts)
        forced = Radio(RADIUS, crossover=0).neighbor_ids(pts)
        assert default == forced
