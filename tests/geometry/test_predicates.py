"""Unit and property tests for geometric predicates."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.predicates import (
    barycentric_weights,
    circumcenter,
    collinear,
    incircle,
    orientation,
    point_in_triangle,
    segments_intersect,
    signed_area,
    triangle_area,
)

import numpy as np

coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestOrientation:
    def test_ccw(self):
        assert orientation((0, 0), (1, 0), (0, 1)) == 1

    def test_cw(self):
        assert orientation((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0
        assert collinear((0, 0), (1, 1), (2, 2))

    @given(coord, coord, coord, coord, coord, coord)
    def test_antisymmetry(self, ax, ay, bx, by, cx, cy):
        assert orientation((ax, ay), (bx, by), (cx, cy)) == -orientation(
            (bx, by), (ax, ay), (cx, cy)
        )

    @given(coord, coord, coord, coord, coord, coord)
    def test_cyclic_invariance(self, ax, ay, bx, by, cx, cy):
        a, b, c = (ax, ay), (bx, by), (cx, cy)
        assert orientation(a, b, c) == orientation(b, c, a) == orientation(c, a, b)


class TestArea:
    def test_signed_area_sign(self):
        assert signed_area((0, 0), (1, 0), (0, 1)) == 0.5
        assert signed_area((0, 0), (0, 1), (1, 0)) == -0.5

    def test_triangle_area(self):
        assert triangle_area((0, 0), (4, 0), (0, 3)) == 6.0
        assert triangle_area((0, 0), (2, 2), (4, 4)) == 0.0


class TestIncircle:
    def test_inside(self):
        # Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        assert incircle((1, 0), (0, 1), (-1, 0), (0, 0)) == 1

    def test_outside(self):
        assert incircle((1, 0), (0, 1), (-1, 0), (5, 5)) == -1

    def test_on_circle_is_tie(self):
        assert incircle((1, 0), (0, 1), (-1, 0), (0, -1)) == 0

    def test_orientation_independent(self):
        # Clockwise triangle must give the same classification.
        assert incircle((1, 0), (-1, 0), (0, 1), (0, 0)) == 1

    def test_degenerate_triangle(self):
        assert incircle((0, 0), (1, 1), (2, 2), (0.5, 0.5)) == -1

    @given(coord, coord)
    def test_vertex_never_strictly_inside(self, dx, dy):
        a, b, c = (0.0, 0.0), (10.0, dx % 7.0), (dy % 5.0, 10.0)
        if orientation(a, b, c) == 0:
            return
        for v in (a, b, c):
            assert incircle(a, b, c, v) <= 0


class TestPointInTriangle:
    def test_inside(self):
        assert point_in_triangle((1, 1), (0, 0), (4, 0), (0, 4))

    def test_boundary(self):
        assert point_in_triangle((2, 0), (0, 0), (4, 0), (0, 4))
        assert point_in_triangle((0, 0), (0, 0), (4, 0), (0, 4))

    def test_outside(self):
        assert not point_in_triangle((3, 3), (0, 0), (4, 0), (0, 4))

    def test_clockwise_triangle(self):
        assert point_in_triangle((1, 1), (0, 0), (0, 4), (4, 0))


class TestCircumcenter:
    def test_right_triangle(self):
        center, radius = circumcenter((0, 0), (2, 0), (0, 2))
        assert math.isclose(center.x, 1.0)
        assert math.isclose(center.y, 1.0)
        assert math.isclose(radius, math.sqrt(2))

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            circumcenter((0, 0), (1, 1), (2, 2))

    @given(coord, coord, coord, coord, coord, coord)
    def test_equidistance(self, ax, ay, bx, by, cx, cy):
        a, b, c = (ax, ay), (bx, by), (cx, cy)
        if orientation(a, b, c) == 0:
            return
        center, radius = circumcenter(a, b, c)
        for p in (a, b, c):
            assert math.isclose(
                center.distance_to(type(center).of(p)), radius,
                rel_tol=1e-6, abs_tol=1e-6,
            )


class TestSegments:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))


class TestBarycentric:
    def test_vertices(self):
        a, b, c = (0.0, 0.0), (4.0, 0.0), (0.0, 4.0)
        wa, wb, wc = barycentric_weights(
            np.array([0.0, 4.0, 0.0]), np.array([0.0, 0.0, 4.0]), a, b, c
        )
        assert np.allclose(wa, [1, 0, 0])
        assert np.allclose(wb, [0, 1, 0])
        assert np.allclose(wc, [0, 0, 1])

    def test_weights_sum_to_one(self):
        a, b, c = (0.0, 0.0), (5.0, 1.0), (2.0, 7.0)
        px = np.linspace(-3, 8, 13)
        py = np.linspace(-2, 9, 13)
        wa, wb, wc = barycentric_weights(px, py, a, b, c)
        assert np.allclose(wa + wb + wc, 1.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            barycentric_weights(
                np.array([0.0]), np.array([0.0]), (0, 0), (1, 1), (2, 2)
            )
