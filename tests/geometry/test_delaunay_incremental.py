"""Incremental retriangulation: ``remove`` and ``update_positions``.

The incremental paths must produce *the same triangle set* as a
from-scratch build over the final point set — compared bitwise through
:func:`canonical_simplices` — with the scalar-predicate
``is_delaunay`` oracle as the independent correctness net. Cocircular
inputs (integer grids) legitimately admit several Delaunay
triangulations; for those the tests fall back to asserting Delaunayhood
when the canonical forms differ, but the random-cloud cases must match
exactly.
"""

import numpy as np
import pytest

from repro.geometry.delaunay import (
    DelaunayTriangulation,
    DuplicatePointError,
    canonical_simplices,
)


def fresh(points):
    return DelaunayTriangulation(points=points)


def canon(tri):
    return canonical_simplices(tri.simplices)


def assert_same_mesh(tri, points, ctx=""):
    """tri must triangulate `points` exactly as a from-scratch build does."""
    assert np.array_equal(tri.points, points), f"points drifted {ctx}"
    ref = fresh(points)
    if not np.array_equal(canon(tri), canon(ref)):
        # Non-unique DT (cocircular input): both must still be Delaunay.
        assert tri.is_delaunay(), f"incremental mesh not Delaunay {ctx}"
        assert ref.is_delaunay()
    assert tri.is_delaunay(), f"not Delaunay {ctx}"


class TestCanonicalSimplices:
    def test_rotation_preserves_cyclic_order(self):
        simp = np.array([[5, 2, 9], [1, 0, 3]])
        out = canonical_simplices(simp)
        # rows rotated min-first, then lexsorted
        assert out.tolist() == [[0, 3, 1], [2, 9, 5]]

    def test_row_order_independent(self):
        simp = np.array([[3, 1, 2], [0, 4, 5]])
        a = canonical_simplices(simp)
        b = canonical_simplices(simp[::-1])
        assert np.array_equal(a, b)

    def test_empty(self):
        out = canonical_simplices(np.empty((0, 3), dtype=int))
        assert out.shape == (0, 3)


class TestRemove:
    def test_interior_vertex(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(40, 2))
        tri = fresh(pts)
        # a vertex well inside the cloud
        centre = pts.mean(axis=0)
        victim = int(np.argmin(((pts - centre) ** 2).sum(axis=1)))
        tri.remove(victim)
        assert_same_mesh(tri, np.delete(pts, victim, axis=0), "after remove")

    def test_hull_vertex(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 100, size=(30, 2))
        tri = fresh(pts)
        victim = int(np.argmin(pts[:, 0]))  # leftmost: on the hull
        tri.remove(victim)
        assert_same_mesh(tri, np.delete(pts, victim, axis=0), "hull remove")

    def test_indices_shift_down(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        tri = fresh(pts)
        tri.remove(1)
        assert tri.n_points == 3
        assert np.array_equal(tri.points, pts[[0, 2, 3]])
        assert (tri.point(1).x, tri.point(1).y) == (0.0, 10.0)
        assert tri.find_vertex((10.0, 10.0)) == 2

    def test_insert_after_remove(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 50, size=(20, 2))
        tri = fresh(pts)
        tri.remove(7)
        new = np.array([25.0, 25.0])
        idx = tri.insert(new)
        assert idx == tri.n_points - 1
        want = np.vstack([np.delete(pts, 7, axis=0), new])
        assert_same_mesh(tri, want, "insert after remove")

    def test_sequential_removals(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, size=(25, 2))
        tri = fresh(pts)
        work = pts.copy()
        for victim in (20, 0, 11, 5):
            tri.remove(victim)
            work = np.delete(work, victim, axis=0)
            assert_same_mesh(tri, work, f"after removing {victim}")

    def test_out_of_range(self):
        tri = fresh(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))
        with pytest.raises(IndexError):
            tri.remove(3)
        with pytest.raises(IndexError):
            tri.remove(-1)

    def test_cocircular_grid(self):
        """Integer grid: many cocircular quadruples; mesh stays Delaunay."""
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        tri = fresh(pts)
        tri.remove(12)  # the centre point
        kept = np.delete(pts, 12, axis=0)
        assert np.array_equal(tri.points, kept)
        assert tri.is_delaunay()


class TestUpdatePositions:
    def test_matches_from_scratch(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 100, size=(50, 2))
        tri = fresh(pts)
        ids = np.array([3, 17, 31, 44])
        new = pts[ids] + rng.uniform(-2, 2, size=(4, 2))
        moved = tri.update_positions(ids, new)
        assert moved == 4
        pts[ids] = new
        assert_same_mesh(tri, pts, "after update")

    def test_unmoved_points_skipped(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 100, size=(20, 2))
        tri = fresh(pts)
        ids = np.arange(6)
        new = pts[ids].copy()
        new[2] += 0.5  # only one actually moves
        assert tri.update_positions(ids, new) == 1
        pts[ids] = new
        assert_same_mesh(tri, pts, "partial move")

    def test_tolerance_suppresses_small_moves(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 100, size=(15, 2))
        tri = fresh(pts)
        ids = np.array([0, 1])
        new = pts[ids] + 1e-6
        assert tri.update_positions(ids, new, tol=1e-3) == 0
        assert np.array_equal(tri.points, pts)  # coordinates unchanged

    def test_full_rebuild_escape_hatch(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 100, size=(30, 2))
        incremental = fresh(pts)
        rebuilt = fresh(pts)
        ids = np.array([2, 9, 25])
        new = pts[ids] + rng.uniform(-5, 5, size=(3, 2))
        incremental.update_positions(ids, new)
        rebuilt.update_positions(ids, new, full_rebuild=True)
        pts[ids] = new
        assert np.array_equal(rebuilt.points, pts)
        assert np.array_equal(canon(incremental), canon(rebuilt))

    def test_move_onto_existing_vertex_raises(self):
        pts = np.array(
            [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0], [5.0, 5.0]]
        )
        tri = fresh(pts)
        with pytest.raises(DuplicatePointError):
            tri.update_positions([4], np.array([[0.0, 0.0]]))

    def test_malformed_input(self):
        tri = fresh(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            tri.update_positions([0], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            tri.update_positions([0, 0], np.zeros((2, 2)))
        with pytest.raises(IndexError):
            tri.update_positions([5], np.zeros((1, 2)))

    def test_random_walk_stays_identical(self):
        """Many rounds of small moves: canonical equality every round."""
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 100, size=(35, 2))
        tri = fresh(pts)
        for step in range(10):
            m = int(rng.integers(1, 10))
            ids = rng.choice(35, size=m, replace=False)
            new = np.clip(
                pts[ids] + rng.uniform(-1, 1, size=(m, 2)), 0.0, 100.0
            )
            tri.update_positions(ids, new)
            pts[ids] = new
            assert np.array_equal(tri.points, pts)
            assert np.array_equal(canon(tri), canon(fresh(pts))), (
                f"diverged at step {step}"
            )

    def test_update_after_remove(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 100, size=(20, 2))
        tri = fresh(pts)
        tri.remove(4)
        work = np.delete(pts, 4, axis=0)
        ids = np.array([0, 10, 18])
        new = work[ids] + rng.uniform(-3, 3, size=(3, 2))
        tri.update_positions(ids, new)
        work[ids] = new
        assert_same_mesh(tri, work, "update after remove")
