"""Delaunay edge cases: collinear input, shared edges, dedup tolerance."""

import numpy as np
import pytest

from repro.geometry.delaunay import DelaunayTriangulation, DuplicatePointError


class TestCollinearInput:
    def test_collinear_points_have_no_triangles(self):
        dt = DelaunayTriangulation([(0, 0), (5, 5), (10, 10)])
        assert dt.n_points == 3
        assert dt.triangles == []
        assert dt.edges() == []

    def test_triangle_appears_once_off_line(self):
        dt = DelaunayTriangulation([(0, 0), (5, 5), (10, 10)])
        dt.insert((5, 0))
        assert len(dt.triangles) == 2  # fan around the off-line point


class TestDedupTolerance:
    def test_tolerance_respected(self):
        dt = DelaunayTriangulation([(0.0, 0.0)], dedup_tol=1e-3)
        with pytest.raises(DuplicatePointError):
            dt.insert((0.0, 5e-4))
        dt.insert((0.0, 5e-3))  # outside tolerance: fine
        assert dt.n_points == 2

    def test_find_vertex_radius(self):
        dt = DelaunayTriangulation([(1.0, 1.0)])
        assert dt.find_vertex((1.0, 1.0)) == 0
        assert dt.find_vertex((1.0, 1.0 + 1e-10)) == 0
        assert dt.find_vertex((1.1, 1.0)) is None
        assert dt.find_vertex((1.0, 1.05), tol=0.1) == 0


class TestSharedEdgeQueries:
    def test_locate_point_on_shared_edge(self):
        dt = DelaunayTriangulation([(0, 0), (10, 0), (10, 10), (0, 10)])
        # The diagonal is shared by both triangles; either is acceptable.
        tri = dt.locate((5.0, 5.0))
        assert tri is not None

    def test_edges_unique_and_sorted(self, rng):
        pts = rng.uniform(0, 30, size=(20, 2))
        dt = DelaunayTriangulation(pts)
        edges = dt.edges()
        assert edges == sorted(set(edges))
        for u, v in edges:
            assert u < v


class TestLargeCoordinates:
    def test_custom_span_supports_big_regions(self):
        dt = DelaunayTriangulation(span=1e9)
        for p in [(0, 0), (1e8, 0), (0, 1e8), (1e8, 1e8)]:
            dt.insert(p)
        assert len(dt.triangles) == 2

    def test_negative_coordinates(self):
        dt = DelaunayTriangulation([(-50, -50), (50, -50), (0, 50)])
        assert len(dt.triangles) == 1
        assert dt.is_delaunay()
