"""Unit tests for geometric primitives."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.primitives import (
    BoundingBox,
    Point2,
    Point3,
    distance,
    distance_squared,
    midpoint,
    pairwise_distances,
    unit_vector,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint2:
    def test_iteration_and_coercion(self):
        p = Point2(1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)
        assert Point2.of((3, 4)) == Point2(3.0, 4.0)
        assert Point2.of(np.array([5.0, 6.0])) == Point2(5.0, 6.0)
        assert Point2.of(p) is p

    def test_arithmetic(self):
        a, b = Point2(1, 2), Point2(3, 5)
        assert a + b == Point2(4, 7)
        assert b - a == Point2(2, 3)
        assert 2 * a == Point2(2, 4)
        assert a * 2 == Point2(2, 4)
        assert b / 2 == Point2(1.5, 2.5)
        assert -a == Point2(-1, -2)

    def test_dot_cross(self):
        a, b = Point2(1, 0), Point2(0, 1)
        assert a.dot(b) == 0.0
        assert a.cross(b) == 1.0
        assert b.cross(a) == -1.0

    def test_norm_and_normalized(self):
        assert Point2(3, 4).norm() == 5.0
        n = Point2(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)
        assert Point2(0, 0).normalized() == Point2(0, 0)

    def test_distance_to(self):
        assert Point2(0, 0).distance_to(Point2(3, 4)) == 5.0

    def test_as_array(self):
        arr = Point2(1, 2).as_array()
        assert arr.dtype == float
        assert arr.tolist() == [1.0, 2.0]

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point2(x1, y1), Point2(x2, y2)
        assert a.distance_to(b) == b.distance_to(a)

    @given(finite, finite, finite, finite)
    def test_distance_squared_consistent(self, x1, y1, x2, y2):
        d = distance((x1, y1), (x2, y2))
        d2 = distance_squared((x1, y1), (x2, y2))
        assert math.isclose(d * d, d2, rel_tol=1e-9, abs_tol=1e-6)


class TestPoint3:
    def test_projection(self):
        p = Point3(1, 2, 3)
        assert p.projection() == Point2(1, 2)
        assert tuple(p) == (1.0, 2.0, 3.0)
        assert p.as_array().tolist() == [1.0, 2.0, 3.0]


class TestBoundingBox:
    def test_square(self):
        box = BoundingBox.square(100.0)
        assert box.width == box.height == 100.0
        assert box.area == 10000.0
        assert box.center == Point2(50.0, 50.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)
        with pytest.raises(ValueError):
            BoundingBox.square(0)
        with pytest.raises(ValueError):
            BoundingBox.square(-5)

    def test_contains_and_clamp(self):
        box = BoundingBox.square(10.0)
        assert box.contains((5, 5))
        assert box.contains((0, 0))
        assert not box.contains((11, 5))
        assert box.contains((10.5, 5), tol=1.0)
        assert box.clamp((15, -3)) == Point2(10.0, 0.0)
        assert box.clamp((5, 5)) == Point2(5.0, 5.0)

    def test_corners_ccw(self):
        c = BoundingBox.square(2.0).corners()
        assert c == (Point2(0, 0), Point2(2, 0), Point2(2, 2), Point2(0, 2))

    def test_around(self):
        box = BoundingBox.around([(1, 2), (5, -1), (3, 4)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (1, -1, 5, 4)
        with pytest.raises(ValueError):
            BoundingBox.around([])


class TestHelpers:
    def test_midpoint(self):
        assert midpoint((0, 0), (2, 4)) == Point2(1, 2)

    def test_unit_vector(self):
        assert unit_vector((0, 0), (0, 7)) == Point2(0, 1)
        assert unit_vector((1, 1), (1, 1)) == Point2(0, 0)

    def test_pairwise_distances(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        d = pairwise_distances(pts)
        assert d.shape == (3, 3)
        assert np.allclose(np.diag(d), 0.0)
        assert math.isclose(d[0, 1], 5.0)
        assert np.allclose(d, d.T)

    def test_pairwise_distances_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 3)))
