"""Regression bands: key headline numbers must stay in known-good ranges.

These are deliberately wide bands around the full-scale results recorded
in EXPERIMENTS.md, evaluated here at reduced scale so the suite stays
fast. They catch silent regressions in algorithm quality — a refactor
that leaves every unit test green but doubles δ fails here.
"""

import numpy as np
import pytest

from repro.core.baselines import random_placement, uniform_grid_placement
from repro.core.fra import solve_osd
from repro.core.problem import OSDProblem, OSTDProblem
from repro.fields.base import sample_grid
from repro.fields.greenorbs import GreenOrbsLightField
from repro.fields.grid import GridField
from repro.sim.engine import MobileSimulation
from repro.surfaces.reconstruction import reconstruct_surface


@pytest.fixture(scope="module")
def canonical():
    """The canonical field at reduced resolution (seed 7, as EXPERIMENTS.md)."""
    field = GreenOrbsLightField(seed=7)
    reference = sample_grid(field, field.region, 51, t=600.0)
    return field, reference


class TestStationaryBands:
    def test_fra_k100_quality_band(self, canonical):
        _, reference = canonical
        result = solve_osd(OSDProblem(k=100, rc=10.0, reference=reference))
        # Full-scale result is ~1966 at res 101; at res 51 the integral is
        # computed on a 4x coarser grid but the per-area error is similar.
        assert 800 < result.delta < 4000
        assert result.connected
        assert result.meta["n_relays"] <= 10

    def test_fra_vs_random_margin_k100(self, canonical):
        _, reference = canonical
        fra = solve_osd(OSDProblem(k=100, rc=10.0, reference=reference))
        gf = GridField(reference)
        rnd_deltas = []
        for seed in range(3):
            pts = random_placement(reference.region, 100, seed=seed)
            rnd_deltas.append(
                reconstruct_surface(reference, pts, values=gf.sample(pts)).delta
            )
        # EXPERIMENTS.md: random/FRA ≈ 1.8 at k=100. Guard at >= 1.2.
        assert float(np.mean(rnd_deltas)) / fra.delta > 1.2

    def test_fra_improves_with_budget(self, canonical):
        _, reference = canonical
        d30 = solve_osd(OSDProblem(k=30, rc=10.0, reference=reference)).delta
        d100 = solve_osd(OSDProblem(k=100, rc=10.0, reference=reference)).delta
        # EXPERIMENTS.md: 4317 -> 1966 (2.2x). Guard at >= 1.5x.
        assert d30 / d100 > 1.5


class TestMobileBands:
    @pytest.fixture(scope="class")
    def run(self):
        field = GreenOrbsLightField(seed=7, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=100, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=15.0,
        )
        return MobileSimulation(problem, resolution=51).run()

    def test_cma_improves_on_initial_grid(self, run):
        # EXPERIMENTS.md: 2519 -> dip 2337 (-7%). Guard: any improvement.
        assert run.deltas.min() < run.deltas[0]

    def test_cma_never_blows_up(self, run):
        # The historical failure mode was delta tripling mid-run.
        assert run.deltas.max() < 1.5 * run.deltas[0]

    def test_cma_connectivity_band(self, run):
        assert run.always_connected

    def test_movement_decays(self, run):
        moved = [r.n_moved for r in run.rounds]
        assert moved[-1] < moved[0]
