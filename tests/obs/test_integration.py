"""End-to-end: instrumented runs produce replayable, summarisable logs."""

import numpy as np

from repro.core.fra import foresighted_refinement
from repro.core.problem import OSTDProblem
from repro.experiments.cli import main
from repro.fields.base import sample_grid
from repro.fields.greenorbs import GreenOrbsLightField
from repro.obs import (
    Instrumentation,
    format_summary,
    load_run_log,
    summarize_run_log,
    use_instrumentation,
)
from repro.sim.engine import MobileSimulation


def make_problem(duration=3.0):
    field = GreenOrbsLightField(side=50.0, seed=7, freeze_sun_at=600.0)
    return OSTDProblem(
        k=16, rc=10.0, rs=5.0, region=field.region, field=field,
        speed=1.0, t0=600.0, duration=duration,
    )


class TestCMARunLog:
    def test_jsonl_log_summarises_without_rerun(self, tmp_path):
        path = tmp_path / "cma.jsonl"
        obs = Instrumentation.to_jsonl(path)
        with use_instrumentation(obs):
            MobileSimulation(make_problem(), resolution=41).run()
        obs.close()

        rows = load_run_log(path)
        assert any(r["event"] == "round" for r in rows)
        assert any(r["event"] == "span" for r in rows)

        summary = summarize_run_log(path)
        by_path = {p.path: p for p in summary.phases}
        for phase in ("step", "step/sense", "step/plan", "step/measure"):
            assert phase in by_path, f"missing phase {phase}"
        # Shares are percentages of the root total: step is the only root.
        assert by_path["step"].share > 0.95
        assert summary.rounds is not None
        assert summary.rounds.n_rounds == 3
        assert np.isfinite(summary.rounds.delta_final)

        text = format_summary(summary)
        assert "%" in text
        assert "delta:" in text

    def test_log_matches_simulation_result(self, tmp_path):
        path = tmp_path / "cma.jsonl"
        obs = Instrumentation.to_jsonl(path)
        with use_instrumentation(obs):
            result = MobileSimulation(make_problem(), resolution=41).run()
        obs.close()
        rounds = [r for r in load_run_log(path) if r["event"] == "round"]
        assert [r["round"] for r in rounds] == [0, 1, 2]
        assert np.allclose([r["delta"] for r in rounds], result.deltas)
        moved = sum(r.n_moved for r in result.rounds)
        assert sum(r["n_moved"] for r in rounds) == moved


class TestFRARunLog:
    def test_refinement_events_logged(self):
        field = GreenOrbsLightField(side=50.0, seed=7, freeze_sun_at=600.0)
        reference = sample_grid(field, field.region, 41, t=600.0)
        obs = Instrumentation.in_memory()
        result = foresighted_refinement(reference, k=20, rc=10.0, obs=obs)
        refines = [e for e in obs.memory_events() if e.name == "fra_refine"]
        stops = [e for e in obs.memory_events() if e.name == "fra_stop"]
        assert len(refines) >= result.n_refinement
        assert len(stops) == 1
        # Budget state decreases monotonically across iterations.
        budgets = [e.fields["budget"] for e in refines]
        assert budgets == sorted(budgets, reverse=True)
        # Every iteration reports the before/after local-error state.
        for e in refines:
            assert e.fields["err_before"] >= 0.0
            assert e.fields["err_after"] >= 0.0

    def test_instrumentation_does_not_change_result(self):
        field = GreenOrbsLightField(side=50.0, seed=7, freeze_sun_at=600.0)
        reference = sample_grid(field, field.region, 41, t=600.0)
        plain = foresighted_refinement(reference, k=20, rc=10.0)
        logged = foresighted_refinement(
            reference, k=20, rc=10.0, obs=Instrumentation.in_memory()
        )
        assert np.allclose(plain.positions, logged.positions)


class TestCLI:
    def test_obs_summarize_command(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        obs = Instrumentation.to_jsonl(path)
        with use_instrumentation(obs):
            MobileSimulation(make_problem(duration=2.0), resolution=41).run()
        obs.close()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase wall time" in out
        assert "step/measure" in out
        assert "rounds: 2" in out

    def test_obs_summarize_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err

    def test_run_with_obs_log(self, tmp_path, capsys):
        path = tmp_path / "fig4.jsonl"
        assert main(["run", "fig4", "--no-artifacts",
                     "--obs-log", str(path)]) == 0
        assert path.exists()
        assert "wrote event log" in capsys.readouterr().out
        # fig4 is a pure-LCM scenario: the log may be sparse, but it must
        # at least parse and end with the metrics snapshot.
        rows = load_run_log(path)
        assert rows[-1]["event"] == "metrics"
