"""Run manifests and the registry over them: identity, integrity, gc."""

import json

import pytest

from repro.obs import (
    RunManifest,
    RunRegistry,
    artifact_ref,
    code_version,
    env_fingerprint,
    file_sha256,
    format_compare,
    format_run_detail,
    format_runs_table,
    new_run_id,
    params_hash,
)
from repro.obs.manifest import MANIFEST_NAME


def make_run(root, run_id, scenario="fig10", started="2026-01-01T00:00:00Z",
             status="complete", payload=b"hello obs\n"):
    """Write a minimal but complete run directory under ``root``."""
    run_dir = root / run_id
    run_dir.mkdir(parents=True)
    log = run_dir / "obs.jsonl"
    log.write_bytes(payload)
    manifest = RunManifest(
        run_id=run_id,
        scenario_id=scenario,
        params={"experiment_id": scenario, "fast": True},
        params_hash=params_hash({"experiment_id": scenario, "fast": True}),
        seeds={"field": 7},
        started_at=started,
        finished_at=started,
        status=status,
        round_count=8,
        final_delta=2739.8,
        counters={"net.sent": 100.0},
        artifacts=[artifact_ref(log, "obs_log", "jsonl", base=run_dir)],
    )
    manifest.save(run_dir / MANIFEST_NAME)
    return manifest


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = make_run(tmp_path, "fig10-x-000001")
        loaded = RunManifest.load(tmp_path / "fig10-x-000001" / MANIFEST_NAME)
        assert loaded.as_dict() == manifest.as_dict()
        assert loaded.final_delta == pytest.approx(2739.8)
        assert loaded.artifact("obs_log").path == "obs.jsonl"
        assert loaded.artifact("nope") is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        make_run(tmp_path, "r1")
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_params_hash_canonical(self):
        a = params_hash({"b": 2, "a": 1})
        b = params_hash({"a": 1, "b": 2})
        assert a == b
        assert a.startswith("sha256:")
        assert a != params_hash({"a": 1, "b": 3})

    def test_new_run_id_unique_and_prefixed(self):
        ids = {new_run_id("fig10") for _ in range(16)}
        assert len(ids) == 16
        assert all(i.startswith("fig10-") for i in ids)
        # Scenario ids with path-hostile characters are sanitised.
        assert "/" not in new_run_id("a/b c")

    def test_artifact_ref_relativises_under_base(self, tmp_path):
        f = tmp_path / "sub" / "x.bin"
        f.parent.mkdir()
        f.write_bytes(b"abc")
        ref = artifact_ref(f, "x", "bin", base=tmp_path)
        assert ref.path == "sub/x.bin"
        assert ref.bytes == 3
        assert ref.sha256 == file_sha256(f)
        assert ref.resolve(tmp_path) == tmp_path / "sub" / "x.bin"

    def test_provenance_helpers_nonempty(self):
        assert code_version()  # git hash here, pkg/unknown elsewhere
        env = env_fingerprint()
        assert "python" in env and "numpy" in env

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / MANIFEST_NAME
        bad.write_text("not json")
        with pytest.raises(ValueError):
            RunManifest.load(bad)
        bad.write_text(json.dumps({"no": "ids"}))
        with pytest.raises(ValueError):
            RunManifest.load(bad)


class TestRegistryScanAndQuery:
    def test_empty_or_missing_root(self, tmp_path):
        registry = RunRegistry(tmp_path / "does-not-exist")
        manifests, problems = registry.scan()
        assert manifests == [] and problems == []
        assert registry.list_runs() == []
        assert registry.gc().n_orphans == 0
        assert format_runs_table([]) == "(no runs)"

    def test_list_newest_first_with_filters(self, tmp_path):
        make_run(tmp_path, "a-1", scenario="fig8",
                 started="2026-01-01T00:00:00Z")
        make_run(tmp_path, "b-2", scenario="fig10",
                 started="2026-01-02T00:00:00Z")
        make_run(tmp_path, "c-3", scenario="fig10",
                 started="2026-01-03T00:00:00Z", status="failed")
        registry = RunRegistry(tmp_path)
        assert [m.run_id for m in registry.list_runs()] == [
            "c-3", "b-2", "a-1"
        ]
        assert [m.run_id for m in registry.list_runs(scenario="fig10")] == [
            "c-3", "b-2"
        ]
        assert [m.run_id for m in registry.list_runs(status="failed")] == [
            "c-3"
        ]

    def test_corrupt_manifest_reported_not_fatal(self, tmp_path):
        make_run(tmp_path, "good-1")
        bad_dir = tmp_path / "bad-1"
        bad_dir.mkdir()
        (bad_dir / MANIFEST_NAME).write_text("{torn")
        manifests, problems = RunRegistry(tmp_path).scan()
        assert [m.run_id for m in manifests] == ["good-1"]
        assert len(problems) == 1 and "bad-1" in problems[0]

    def test_get_missing_and_duplicate(self, tmp_path):
        make_run(tmp_path, "r-1")
        registry = RunRegistry(tmp_path)
        with pytest.raises(KeyError):
            registry.get("nope")
        # A second directory claiming the same run id is store corruption.
        dup = tmp_path / "other-dir"
        dup.mkdir()
        (dup / MANIFEST_NAME).write_text(
            json.dumps({"run_id": "r-1", "scenario_id": "fig10"})
        )
        with pytest.raises(ValueError):
            registry.get("r-1")


class TestRegistryVerify:
    def test_verify_ok(self, tmp_path):
        make_run(tmp_path, "r-1")
        report = RunRegistry(tmp_path).verify("r-1")
        assert report.ok
        assert [c.status for c in report.checks] == ["ok"]

    def test_verify_deleted_artifact(self, tmp_path):
        make_run(tmp_path, "r-1")
        (tmp_path / "r-1" / "obs.jsonl").unlink()
        report = RunRegistry(tmp_path).verify("r-1")
        assert not report.ok
        assert report.checks[0].status == "missing"

    def test_verify_modified_artifact(self, tmp_path):
        make_run(tmp_path, "r-1")
        log = tmp_path / "r-1" / "obs.jsonl"
        log.write_bytes(b"tampered!!")  # same length as "hello obs\n"
        report = RunRegistry(tmp_path).verify("r-1")
        assert not report.ok
        assert report.checks[0].status == "hash_mismatch"

    def test_verify_size_mismatch(self, tmp_path):
        make_run(tmp_path, "r-1")
        log = tmp_path / "r-1" / "obs.jsonl"
        log.write_bytes(b"short")
        report = RunRegistry(tmp_path).verify("r-1")
        assert report.checks[0].status == "size_mismatch"


class TestRegistryGc:
    def test_dry_run_reports_without_deleting(self, tmp_path):
        make_run(tmp_path, "r-1")
        stray = tmp_path / "r-1" / "leftover.npz"
        stray.write_bytes(b"x")
        report = RunRegistry(tmp_path).gc()  # dry-run default
        assert report.dry_run
        assert report.orphans == [stray]
        assert report.removed == []
        assert stray.exists()

    def test_delete_removes_orphans_and_prunes_dirs(self, tmp_path):
        make_run(tmp_path, "r-1")
        crashed = tmp_path / "crashed-run"
        crashed.mkdir()
        (crashed / "obs.jsonl").write_bytes(b"partial")
        report = RunRegistry(tmp_path).gc(dry_run=False)
        assert not report.dry_run
        assert len(report.removed) == 1
        assert not crashed.exists()  # emptied directory pruned
        # The manifested run is untouched.
        assert RunRegistry(tmp_path).verify("r-1").ok


class TestRendering:
    def test_table_detail_compare(self, tmp_path):
        make_run(tmp_path, "a-1", scenario="fig8")
        make_run(tmp_path, "b-2", scenario="fig10")
        registry = RunRegistry(tmp_path)
        table = format_runs_table(registry.list_runs())
        assert "a-1" in table and "b-2" in table and "run_id" in table

        manifest = registry.get("a-1")
        detail = format_run_detail(
            manifest, verify=registry.verify("a-1")
        )
        assert "verified ok" in detail
        assert "net.sent" in detail

        compare = format_compare([registry.get("a-1"), registry.get("b-2")])
        assert "final_delta" in compare
        assert "net.sent" in compare
        assert format_compare([]) == "(no runs to compare)"
