"""Tests for live monitoring: the tailer, the dashboard, OpenMetrics."""

import json
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.watch import (
    LineAssembler,
    WatchState,
    follow,
    read_new_lines,
    render_openmetrics,
    render_watch,
    watch,
)


def _round(i, delta, **extra):
    row = {"event": "round", "t": float(i), "round": i, "delta": delta,
           "rmse": 1.0, "connected": True, "n_components": 1,
           "n_alive": 8, "n_moved": 2}
    row.update(extra)
    return row


class TestFollow:
    def test_replays_existing_content_in_once_mode(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rows = [_round(0, 3.0), _round(1, 2.5)]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        got = list(follow(path, stop=lambda: True))
        assert [r["round"] for r in got] == [0, 1]

    def test_partial_trailing_line_is_pending_not_malformed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        full = json.dumps(_round(0, 3.0)) + "\n"
        partial = json.dumps(_round(1, 2.5))
        path.write_text(full + partial[: len(partial) // 2])

        polls = []

        def stop():
            polls.append(None)
            return len(polls) >= 2

        def sleep(_):
            # Between polls the writer finishes the line and appends more.
            with path.open("a") as fh:
                fh.write(partial[len(partial) // 2:] + "\n")
                fh.write(json.dumps(_round(2, 2.0)) + "\n")

        got = list(follow(path, stop=stop, sleep=sleep))
        assert [r["round"] for r in got] == [0, 1, 2]

    def test_torn_terminated_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(_round(0, 3.0)) + "\n"
            + '{"event": "round", "rou\n'
            + json.dumps(_round(2, 2.0)) + "\n"
        )
        got = list(follow(path, stop=lambda: True))
        assert [r["round"] for r in got] == [0, 2]

    def test_missing_file_yields_nothing(self, tmp_path):
        got = list(follow(tmp_path / "nope.jsonl", stop=lambda: True))
        assert got == []

    def test_non_event_rows_are_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"no_event_key": 1}\n[1, 2]\n'
                        + json.dumps(_round(0, 3.0)) + "\n")
        got = list(follow(path, stop=lambda: True))
        assert [r["round"] for r in got] == [0]


class TestLineAssembler:
    def test_lines_come_back_verbatim(self):
        asm = LineAssembler()
        assert asm.push('{"a": 1}\n{"b":  2}\n') == ['{"a": 1}', '{"b":  2}']

    def test_partial_line_stays_pending_across_pushes(self):
        asm = LineAssembler()
        assert asm.push('{"round"') == []
        assert asm.pending == '{"round"'
        assert asm.push(': 1}\n') == ['{"round": 1}']
        assert asm.pending == ""

    def test_chunk_boundaries_do_not_matter(self):
        text = '{"a": 1}\n{"b": 2}\n{"c": 3}\n'
        for size in (1, 2, 3, 5, 7, len(text)):
            asm = LineAssembler()
            got = []
            for i in range(0, len(text), size):
                got.extend(asm.push(text[i:i + size]))
            assert got == ['{"a": 1}', '{"b": 2}', '{"c": 3}'], size

    def test_reset_drops_pending(self):
        asm = LineAssembler()
        asm.push("half a li")
        asm.reset()
        assert asm.pending == ""
        assert asm.push("ne\n") == ["ne"]


class TestReadNewLines:
    def test_incremental_reads_pick_up_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        asm = LineAssembler()
        path.write_text("a\nb\n")
        lines, pos = read_new_lines(path, 0, asm)
        assert lines == ["a", "b"]
        with path.open("a") as fh:
            fh.write("c\n")
        lines, pos = read_new_lines(path, pos, asm)
        assert lines == ["c"]
        # no growth -> no read, position unchanged
        assert read_new_lines(path, pos, asm) == ([], pos)

    def test_missing_file_is_quietly_empty(self, tmp_path):
        asm = LineAssembler()
        assert read_new_lines(tmp_path / "nope", 0, asm) == ([], 0)

    def test_flush_mid_line_is_pending_until_newline(self, tmp_path):
        # a writer may flush in the middle of a JSON object; the torn
        # half must neither surface nor be lost
        path = tmp_path / "log.jsonl"
        asm = LineAssembler()
        path.write_text('{"round": ')
        lines, pos = read_new_lines(path, 0, asm)
        assert lines == [] and pos > 0
        with path.open("a") as fh:
            fh.write('1}\n')
        lines, pos = read_new_lines(path, pos, asm)
        assert lines == ['{"round": 1}']

    def test_rotation_resets_to_the_new_file(self, tmp_path):
        # the latent gap this PR fixes: a file that shrank (rotated /
        # truncated / replaced) used to stall the tailer forever at the
        # old offset — now it re-reads from byte zero
        path = tmp_path / "log.jsonl"
        asm = LineAssembler()
        path.write_text("old-1\nold-2\nhalf a li")
        lines, pos = read_new_lines(path, 0, asm)
        assert lines == ["old-1", "old-2"]
        assert asm.pending == "half a li"

        path.write_text("new-1\n")  # rotation: smaller file, fresh content
        lines, pos = read_new_lines(path, pos, asm)
        assert lines == ["new-1"]
        assert pos == len("new-1\n")
        # the stale partial line did not contaminate the new stream
        assert asm.pending == ""

    def test_follow_survives_rotation(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps(_round(0, 3.0)) + "\n" + json.dumps(_round(1, 2.0)) + "\n"
        )

        polls = []

        def stop():
            polls.append(None)
            return len(polls) >= 2

        def sleep(_):
            # between polls the log is rotated and a (shorter) new run
            # starts — shrinkage is how the tailer detects rotation
            path.write_text(json.dumps(_round(7, 1.0)) + "\n")

        got = list(follow(path, stop=stop, sleep=sleep))
        assert [r["round"] for r in got] == [0, 1, 7]

    def test_concurrent_writer_reader_loses_nothing(self, tmp_path):
        """Regression: tail a JsonlSink-written log while it grows.

        The writer flushes after every event (the serve configuration);
        the reader polls with read_new_lines. Every line must come back
        byte-verbatim, exactly once, in order — torn reads surface here
        as JSON parse failures or missing rounds.
        """
        from repro.obs.events import Event
        from repro.obs.sinks import JsonlSink

        path = tmp_path / "log.jsonl"
        n_events = 200
        done = threading.Event()

        def write():
            sink = JsonlSink(path, flush_every=1)
            for i in range(n_events):
                sink.write(Event(name="round", t=float(i),
                                 fields={"round": i, "delta": 1.0 / (i + 1)}))
            sink.close()
            done.set()

        writer = threading.Thread(target=write)
        writer.start()
        asm = LineAssembler()
        got, pos = [], 0
        while True:
            finished = done.is_set()
            lines, pos = read_new_lines(path, pos, asm)
            got.extend(lines)
            if finished and not lines:
                break
        writer.join()

        assert got == path.read_text().splitlines()
        rows = [json.loads(line) for line in got]
        assert [r["round"] for r in rows] == list(range(n_events))
        assert asm.pending == ""


class TestWatchState:
    def test_folds_rounds_spans_and_messages(self):
        state = WatchState()
        state.feed(_round(0, 3.0))
        state.feed({"event": "span", "t": 1.0, "phase": "sense",
                    "path": "step/sense", "dur_s": 0.25, "depth": 1})
        state.feed({"event": "msg_send", "t": 1.0, "trace_id": "r0.n1>n0",
                    "round": 0, "sender": 1, "receiver": 0})
        assert state.n_events == 3
        assert state.last_round["round"] == 0
        assert state.deltas == [3.0]
        assert state.phase_totals["step/sense"] == 0.25
        assert state.net_counts["msg_send"] == 1

    def test_nan_delta_is_not_plotted(self):
        state = WatchState()
        state.feed(_round(0, float("nan")))
        assert state.deltas == []

    def test_delta_history_is_bounded(self):
        state = WatchState()
        state.max_deltas = 5
        for i in range(12):
            state.feed(_round(i, float(i)))
        assert state.deltas == [7.0, 8.0, 9.0, 10.0, 11.0]

    def test_log_alerts_dedupe_against_own_monitor(self):
        # Feed a dead-fleet round: the watcher's own monitor fires, and
        # the writer-side alert event for the same (rule, round) must not
        # double-count.
        state = WatchState()
        state.feed(_round(3, 2.0, n_alive=0))
        assert [a.rule for a in state.alerts] == ["dead_fleet"]
        state.feed({"event": "alert", "t": 3.5, "rule": "dead_fleet",
                    "round": 3, "severity": "critical", "message": "x"})
        assert len(state.alerts) == 1

    def test_render_includes_all_sections(self):
        state = WatchState()
        state.feed(_round(0, 3.0))
        state.feed({"event": "span", "t": 1.0, "phase": "step",
                    "path": "step", "dur_s": 0.5, "depth": 0})
        state.feed({"event": "msg_lost", "t": 1.0, "trace_id": "r0.n1>n0",
                    "round": 0, "sender": 1, "receiver": 0, "attempts": 3})
        state.feed({"event": "alert", "t": 1.0, "rule": "divergence",
                    "round": 0, "severity": "critical", "message": "boom"})
        text = render_watch(state, "demo")
        assert "watching: demo" in text
        assert "round    0" in text
        assert "step" in text
        assert "lost=1" in text
        assert "divergence: boom" in text

    def test_render_with_no_events(self):
        text = render_watch(WatchState(), "empty")
        assert "no round events yet" in text


class TestWatchOnce:
    def test_once_renders_single_frame_and_returns_state(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("".join(
            json.dumps(_round(i, 3.0 - i * 0.1)) + "\n" for i in range(4)
        ))
        frames = []
        state = watch(path, once=True, out=frames.append)
        assert len(frames) == 1
        assert state.n_events == 4
        assert "round    3" in frames[0]


class TestWatchRunMeta:
    def test_header_captured_and_rendered(self):
        state = WatchState()
        state.feed({
            "event": "run_meta", "t": 0.0, "schema_version": 1,
            "scenario_id": "fig10", "seed": 7,
            "params_hash": "sha256:abcd1234abcd1234",
        })
        assert state.run_meta["scenario_id"] == "fig10"
        assert "event" not in state.run_meta and "t" not in state.run_meta
        text = render_watch(state, "demo")
        assert "scenario fig10" in text
        assert "seed 7" in text
        assert "params sha256:abcd1234abcd1234" in text

    def test_headerless_log_renders_without_meta_line(self):
        text = render_watch(WatchState(), "demo")
        assert "scenario" not in text


class TestRenderOpenmetrics:
    def test_exact_exposition_format(self):
        """Pin the full text byte for byte — the scrape contract.

        A scrape endpoint serves this verbatim; silent format drift would
        break downstream parsers, so the whole rendering is pinned, not
        just spot-checked, and it must terminate with ``# EOF`` per the
        OpenMetrics spec.
        """
        snapshot = {
            "net.sent": 42,
            "phase.step": {
                "count": 6, "total": 1.2, "mean": 0.2,
                "min": 0.1, "max": 0.4, "p50": 0.18, "p95": 0.38,
            },
        }
        assert render_openmetrics(snapshot) == (
            "# TYPE repro_net_sent gauge\n"
            "repro_net_sent 42\n"
            "# TYPE repro_phase_step summary\n"
            'repro_phase_step{quantile="0.5"} 0.18\n'
            'repro_phase_step{quantile="0.95"} 0.38\n'
            "repro_phase_step_count 6\n"
            "repro_phase_step_sum 1.2\n"
            "# EOF\n"
        )

    def test_empty_snapshot_is_just_eof(self):
        assert render_openmetrics({}) == "# EOF\n"

    def test_scalars_become_gauges(self):
        text = render_openmetrics({"net.sent": 42, "rounds": 6})
        assert "# TYPE repro_net_sent gauge" in text
        assert "repro_net_sent 42" in text
        assert text.endswith("# EOF\n")

    def test_summaries_expose_quantiles_count_and_sum(self):
        snapshot = {"phase.step": {
            "count": 6, "total": 1.2, "mean": 0.2,
            "min": 0.1, "max": 0.4, "p50": 0.18, "p95": 0.38,
        }}
        text = render_openmetrics(snapshot)
        assert "# TYPE repro_phase_step summary" in text
        assert 'repro_phase_step{quantile="0.5"} 0.18' in text
        assert 'repro_phase_step{quantile="0.95"} 0.38' in text
        assert "repro_phase_step_count 6" in text
        assert "repro_phase_step_sum 1.2" in text

    def test_names_are_sanitised(self):
        text = render_openmetrics({"9weird-name/x": 1.0}, prefix="")
        assert "_9weird_name_x 1" in text

    def test_live_registry_snapshot_renders(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(3)
        registry.summary("dt").observe(0.5)
        text = render_openmetrics(registry.snapshot())
        assert "repro_net_sent 3" in text
        assert "repro_dt_count 1" in text
