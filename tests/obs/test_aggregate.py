"""Cross-worker metric aggregation: kind semantics, disjoint shards."""

import json

import pytest

from repro.obs import (
    Instrumentation,
    aggregate_metrics_events,
    aggregate_run_log,
    merge_snapshots,
    merge_summary_parts,
)


class TestMergeSummaryParts:
    def test_count_total_min_max_mean_exact(self):
        parts = [
            {"count": 2, "total": 10.0, "min": 1.0, "max": 9.0,
             "p50": 5.0, "p95": 9.0},
            {"count": 3, "total": 6.0, "min": 0.5, "max": 4.0,
             "p50": 2.0, "p95": 4.0},
        ]
        merged = merge_summary_parts(parts)
        assert merged["count"] == 5
        assert merged["total"] == pytest.approx(16.0)
        assert merged["mean"] == pytest.approx(16.0 / 5)
        assert merged["min"] == pytest.approx(0.5)
        assert merged["max"] == pytest.approx(9.0)
        # Quantiles: count-weighted average of the per-shard quantiles.
        assert merged["p50"] == pytest.approx((5.0 * 2 + 2.0 * 3) / 5)

    def test_empty_shards_ignored(self):
        merged = merge_summary_parts([
            {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0},
            {"count": 1, "total": 3.0, "min": 3.0, "max": 3.0,
             "p50": 3.0, "p95": 3.0},
        ])
        assert merged["count"] == 1
        assert merged["min"] == pytest.approx(3.0)

    def test_all_empty(self):
        merged = merge_summary_parts([{"count": 0}])
        assert merged["count"] == 0
        assert merged["mean"] == 0.0


class TestMergeSnapshots:
    def test_kind_semantics(self):
        kinds = {"n.sent": "counter", "fleet.size": "gauge",
                 "lat": "summary"}
        merged = merge_snapshots(
            [
                {"n.sent": 10.0, "fleet.size": 5.0,
                 "lat": {"count": 1, "total": 2.0, "min": 2.0, "max": 2.0,
                         "p50": 2.0, "p95": 2.0}},
                {"n.sent": 7.0, "fleet.size": 4.0,
                 "lat": {"count": 1, "total": 4.0, "min": 4.0, "max": 4.0,
                         "p50": 4.0, "p95": 4.0}},
            ],
            kinds=kinds,
        )
        assert merged["n.sent"] == pytest.approx(17.0)  # counters sum
        assert merged["fleet.size"] == pytest.approx(4.0)  # last wins
        assert merged["lat"]["count"] == 2
        assert merged["lat"]["max"] == pytest.approx(4.0)

    def test_disjoint_metric_name_sets(self):
        merged = merge_snapshots(
            [{"a.only": 1.0}, {"b.only": 2.0}, {"a.only": 3.0}],
            kinds={"a.only": "counter", "b.only": "counter"},
        )
        assert merged == {"a.only": 4.0, "b.only": 2.0}

    def test_headerless_fallback_shapes(self):
        # No kind map: dicts merge as summaries, scalars sum as counters.
        merged = merge_snapshots([
            {"x": 2.0, "s": {"count": 1, "total": 5.0, "min": 5.0,
                             "max": 5.0, "p50": 5.0, "p95": 5.0}},
            {"x": 3.0},
        ])
        assert merged["x"] == pytest.approx(5.0)
        assert merged["s"]["count"] == 1

    def test_empty(self):
        assert merge_snapshots([]) == {}


class TestAggregateEvents:
    def test_skips_already_aggregated_rows(self):
        rows = [
            {"event": "metrics", "t": 1.0, "snapshot": {"c": 1.0},
             "kinds": {"c": "counter"}},
            {"event": "metrics", "t": 2.0, "snapshot": {"c": 2.0},
             "kinds": {"c": "counter"}},
            {"event": "metrics", "t": 3.0, "snapshot": {"c": 3.0},
             "aggregated": True, "shards": 2},
            {"event": "round", "t": 0.5, "delta": 1.0},
        ]
        merged, n = aggregate_metrics_events(rows)
        assert n == 2
        assert merged["c"] == pytest.approx(3.0)
        # Idempotent: re-aggregating the merged stream changes nothing.
        rows.append({"event": "metrics", "t": 4.0, "snapshot": merged,
                     "aggregated": True, "shards": n})
        merged2, n2 = aggregate_metrics_events(rows)
        assert (merged2, n2) == (merged, n)

    def test_aggregate_run_log(self, tmp_path):
        log = tmp_path / "merged.jsonl"
        rows = [
            {"event": "metrics", "t": 1.0, "snapshot": {"c": 1.5},
             "kinds": {"c": "counter"}},
            {"event": "metrics", "t": 2.0, "snapshot": {"c": 2.5},
             "kinds": {"c": "counter"}},
        ]
        log.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        merged, n = aggregate_run_log(log)
        assert n == 2
        assert merged["c"] == pytest.approx(4.0)


class TestKindMapTravelsInCloseEvent:
    def test_close_emits_kinds(self):
        obs = Instrumentation.in_memory()
        obs.counter("n.sent").inc(3)
        obs.gauge("fleet").set(5.0)
        obs.summary("lat").observe(2.0)
        obs.close()
        metrics = [e for e in obs.memory_events() if e.name == "metrics"]
        assert len(metrics) == 1
        kinds = metrics[0].fields["kinds"]
        assert kinds == {"n.sent": "counter", "fleet": "gauge",
                         "lat": "summary"}

    def test_two_worker_merge_matches_one_process(self):
        """Two shards' counter totals merge to the one-process total."""
        def worker(increments):
            obs = Instrumentation.in_memory()
            for n in increments:
                obs.counter("net.sent").inc(n)
            obs.close()
            row = [e for e in obs.memory_events()
                   if e.name == "metrics"][0]
            return {"event": "metrics", "t": row.t, **row.fields}

        shard_rows = [worker([1, 2, 3]), worker([10])]
        merged, n = aggregate_metrics_events(shard_rows)
        assert n == 2
        assert merged["net.sent"] == pytest.approx(16.0)
