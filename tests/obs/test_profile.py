"""Per-phase profiling: opt-in middleware, profile.* events, read side."""

import pytest

from repro.core.problem import OSTDProblem
from repro.fields.greenorbs import GreenOrbsLightField
from repro.obs import (
    Instrumentation,
    PhaseProfiler,
    ProfileConfig,
    format_profile,
    get_profile_config,
    summarize_profile,
    use_instrumentation,
    use_profiling,
)
from repro.sim.engine import MobileSimulation


def make_problem(duration=2.0):
    field = GreenOrbsLightField(side=50.0, seed=7, freeze_sun_at=600.0)
    return OSTDProblem(
        k=16, rc=10.0, rs=5.0, region=field.region, field=field,
        speed=1.0, t0=600.0, duration=duration,
    )


class TestAmbientConfig:
    def test_off_by_default(self):
        assert get_profile_config() is None

    def test_use_profiling_installs_and_restores(self):
        with use_profiling() as cfg:
            assert get_profile_config() is cfg
            assert cfg == ProfileConfig()
        assert get_profile_config() is None

    def test_nested_innermost_wins(self):
        outer = ProfileConfig(memory=False)
        inner = ProfileConfig(cpu=False)
        with use_profiling(outer):
            with use_profiling(inner):
                assert get_profile_config() is inner
            assert get_profile_config() is outer


class TestEngineWiring:
    def test_no_middleware_without_ambient_config(self):
        sim = MobileSimulation(make_problem(), resolution=21)
        assert not any(
            isinstance(m, PhaseProfiler) for m in sim.scheduler.middleware
        )

    def test_no_middleware_when_obs_disabled(self):
        # Profiling needs a bus to land on; disabled obs means no profiler
        # (and no tracemalloc cost) even inside a use_profiling region.
        with use_profiling(ProfileConfig(memory=False)):
            sim = MobileSimulation(make_problem(), resolution=21)
        assert not any(
            isinstance(m, PhaseProfiler) for m in sim.scheduler.middleware
        )

    def test_profiled_run_emits_events(self):
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs), use_profiling():
            MobileSimulation(make_problem(), resolution=21).run()
        names = [e.name for e in obs.memory_events()]
        assert "profile.phase" in names
        assert "profile.round" in names
        phase_rows = [
            e.fields for e in obs.memory_events()
            if e.name == "profile.phase"
        ]
        phases = {r["phase"] for r in phase_rows}
        assert {"sense", "plan", "measure"} <= phases
        sample = phase_rows[0]
        assert sample["wall_s"] >= 0.0
        assert "cpu_s" in sample
        assert "alloc_delta_b" in sample and "alloc_peak_b" in sample

    def test_round_counter_deltas_attributed(self):
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs), use_profiling():
            MobileSimulation(make_problem(), resolution=21).run()
        rounds = [
            e.fields for e in obs.memory_events()
            if e.name == "profile.round"
        ]
        assert rounds
        # Per-round deltas sum to the final counter totals.
        totals = {}
        for r in rounds:
            for name, delta in r["counter_deltas"].items():
                totals[name] = totals.get(name, 0.0) + delta
        finals = {
            name: value
            for name, value in obs.metrics.snapshot().items()
            if obs.metrics.kinds().get(name) == "counter"
        }
        for name, total in totals.items():
            assert total == pytest.approx(finals[name]), name

    def test_dimensions_can_be_disabled(self):
        obs = Instrumentation.in_memory()
        cfg = ProfileConfig(cpu=False, memory=False, counters=False)
        with use_instrumentation(obs), use_profiling(cfg):
            MobileSimulation(make_problem(), resolution=21).run()
        phase_rows = [
            e.fields for e in obs.memory_events()
            if e.name == "profile.phase"
        ]
        assert phase_rows
        assert "cpu_s" not in phase_rows[0]
        assert "alloc_delta_b" not in phase_rows[0]
        round_rows = [
            e.fields for e in obs.memory_events()
            if e.name == "profile.round"
        ]
        assert "counter_deltas" not in round_rows[0]


class TestReadSide:
    def _rows(self):
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs), use_profiling():
            MobileSimulation(make_problem(), resolution=21).run()
        return [
            {"event": e.name, "t": e.t, **e.fields}
            for e in obs.memory_events()
        ]

    def test_summarize_and_format(self):
        rows = self._rows()
        summary = summarize_profile(rows)
        assert summary.has_data
        assert summary.n_rounds == 2
        by_phase = {p.phase: p for p in summary.phases}
        assert "measure" in by_phase
        assert by_phase["measure"].count == 2
        # Sorted hottest-first by CPU.
        assert summary.phases == sorted(
            summary.phases, key=lambda p: p.cpu_s, reverse=True
        )
        text = format_profile(summary, title="t")
        assert "== profile: t ==" in text
        assert "measure" in text
        assert "rounds profiled: 2" in text

    def test_empty_stream(self):
        summary = summarize_profile([{"event": "round", "t": 0.0}])
        assert not summary.has_data
        assert "no profile.* events" in format_profile(summary)
