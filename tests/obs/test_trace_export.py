"""Tests for the Chrome trace-event exporter."""

import json

from repro.obs.export import (
    PID_MARKERS,
    PID_NETWORK,
    PID_PHASES,
    export_run_log,
    to_chrome_trace,
)


def span(path, t, dur, **extra):
    phase = path.rsplit("/", 1)[-1]
    return {"event": "span", "t": t, "phase": phase, "path": path,
            "dur_s": dur, "depth": path.count("/"), **extra}


def msg(name, t, trace_id, sender, receiver, **extra):
    return {"event": name, "t": t, "trace_id": trace_id,
            "round": 0, "sender": sender, "receiver": receiver, **extra}


class TestToChromeTrace:
    def test_spans_become_complete_slices(self):
        doc = to_chrome_trace([span("step", 1.0, 0.25)])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (sl,) = slices
        assert sl["pid"] == PID_PHASES
        assert sl["name"] == "step"
        # Span events fire at exit, so the slice starts at t - dur.
        assert sl["ts"] == (1.0 - 0.25) * 1e6
        assert sl["dur"] == 0.25 * 1e6

    def test_nested_paths_get_distinct_tracks(self):
        doc = to_chrome_trace([
            span("step", 1.0, 0.5),
            span("step/sense", 0.8, 0.1),
            span("step", 2.0, 0.5),
        ])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in slices}
        assert tids["step"] != tids["sense"]
        thread_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == PID_PHASES
        }
        assert thread_names == {"step", "step/sense"}

    def test_message_events_form_a_flow(self):
        rows = [
            msg("msg_send", 1.0, "r0.n1>n0", 1, 0),
            msg("msg_drop", 1.1, "r0.n1>n0", 1, 0, attempt=0),
            msg("msg_retry", 1.2, "r0.n1>n0", 1, 0, attempt=1),
            msg("msg_deliver", 1.3, "r0.n1>n0", 1, 0, sent_round=0, lag=0),
        ]
        doc = to_chrome_trace(rows)
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f")]
        assert [e["ph"] for e in flows] == ["s", "t", "t", "t"]
        assert len({e["id"] for e in flows}) == 1
        assert all(e["name"] == "r0.n1>n0" for e in flows)
        # Steps bind to the enclosing slice so arrows land on the slices.
        assert all(e["bp"] == "e" for e in flows if e["ph"] == "t")

    def test_terminal_events_close_the_flow(self):
        doc = to_chrome_trace([
            msg("msg_send", 1.0, "r0.n1>n0", 1, 0),
            msg("msg_lost", 1.1, "r0.n1>n0", 1, 0, attempts=3),
        ])
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f")]
        assert [e["ph"] for e in flows] == ["s", "f"]

    def test_sender_and_receiver_side_tracks(self):
        doc = to_chrome_trace([
            msg("msg_send", 1.0, "r0.n1>n0", 1, 0),
            msg("msg_deliver", 1.1, "r0.n1>n0", 1, 0, sent_round=0, lag=0),
        ])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == PID_NETWORK
        }
        send, deliver = slices
        assert send["tid"] == names["node 1"]  # sender side
        assert deliver["tid"] == names["node 0"]  # receiver side

    def test_distinct_beacons_get_distinct_flow_ids(self):
        doc = to_chrome_trace([
            msg("msg_send", 1.0, "r0.n1>n0", 1, 0),
            msg("msg_send", 1.1, "r0.n2>n0", 2, 0),
        ])
        flows = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        assert len({e["id"] for e in flows}) == 2

    def test_rounds_and_alerts_become_instants(self):
        doc = to_chrome_trace([
            {"event": "round", "t": 1.0, "round": 0, "delta": 3.0},
            {"event": "alert", "t": 2.0, "rule": "delta_stall",
             "round": 0, "severity": "warning", "message": "x"},
        ])
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["round 0", "alert:delta_stall"]
        assert all(e["pid"] == PID_MARKERS for e in instants)
        tids = [e["tid"] for e in instants]
        assert tids[0] != tids[1]  # rounds and alerts tracks

    def test_unknown_events_are_skipped(self):
        doc = to_chrome_trace([
            {"event": "metrics", "t": 1.0, "snapshot": {}},
            {"event": "lcm_pass", "t": 1.0, "round": 0, "moves": 0},
        ])
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_output_is_json_serialisable(self):
        doc = to_chrome_trace([
            span("step", 1.0, 0.5),
            msg("msg_send", 1.0, "r0.n1>n0", 1, 0),
            {"event": "round", "t": 1.0, "round": 0},
        ])
        parsed = json.loads(json.dumps(doc))
        assert parsed["displayTimeUnit"] == "ms"
        assert isinstance(parsed["traceEvents"], list)


class TestExportRunLog:
    def _write_log(self, path, rows):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in rows), encoding="utf-8"
        )

    def test_default_output_path(self, tmp_path):
        log = tmp_path / "run.jsonl"
        self._write_log(log, [span("step", 1.0, 0.5)])
        out = export_run_log(log)
        assert out == tmp_path / "run.trace.json"
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_explicit_output_path(self, tmp_path):
        log = tmp_path / "run.jsonl"
        self._write_log(log, [span("step", 1.0, 0.5)])
        out = export_run_log(log, tmp_path / "deep" / "t.json")
        assert out.exists()
        json.loads(out.read_text())
