"""Tests for the event bus and the sinks."""

import json

import numpy as np
import pytest

from repro.obs import Event, EventBus, JsonlSink, MemorySink, NullSink
from repro.obs.sinks import json_safe


class TestEvent:
    def test_as_dict_flattens_fields(self):
        event = Event(name="x", t=1.5, fields={"a": 1, "b": "two"})
        assert event.as_dict() == {"event": "x", "t": 1.5, "a": 1, "b": "two"}

    def test_reserved_keys_not_clobbered(self):
        event = Event(name="x", t=1.5, fields={"t": 600.0, "event": "no"})
        row = event.as_dict()
        assert row["t"] == 1.5
        assert row["event"] == "x"
        assert row["field_t"] == 600.0
        assert row["field_event"] == "no"


class TestEventBus:
    def test_emit_fans_out_to_all_sinks(self):
        a, b = MemorySink(), MemorySink()
        bus = EventBus([a, b])
        bus.emit("tick", n=1)
        assert len(a.events) == 1 and len(b.events) == 1
        assert a.events[0].name == "tick"
        assert a.events[0].fields == {"n": 1}

    def test_disabled_bus_drops_events(self):
        sink = MemorySink()
        bus = EventBus([sink], enabled=False)
        bus.emit("tick")
        assert sink.events == []

    def test_timestamps_are_monotonic(self):
        sink = MemorySink()
        bus = EventBus([sink])
        for _ in range(5):
            bus.emit("tick")
        times = [e.t for e in sink.events]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_injected_clock(self):
        ticks = iter([10.0, 11.5, 13.0])
        sink = MemorySink()
        bus = EventBus([sink], clock=lambda: next(ticks))
        bus.emit("a")
        bus.emit("b")
        assert [e.t for e in sink.events] == [1.5, 3.0]

    def test_add_sink_sees_later_events_only(self):
        bus = EventBus()
        bus.emit("before")
        sink = MemorySink()
        bus.add_sink(sink)
        bus.emit("after")
        assert [e.name for e in sink.events] == ["after"]


class TestJsonSafe:
    def test_numpy_scalars_and_arrays(self):
        assert json_safe(np.float64(1.5)) == 1.5
        assert json_safe(np.int32(3)) == 3
        assert json_safe(np.bool_(True)) is True
        assert json_safe(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_nested_containers(self):
        out = json_safe({"a": (np.int64(1), [np.float32(0.5)])})
        assert out == {"a": [1, [0.5]]}
        json.dumps(out)  # must be serialisable

    def test_fallback_to_str(self):
        class Weird:
            def __repr__(self):
                return "weird"

        assert isinstance(json_safe(Weird()), str)

    def test_non_finite_floats_become_null(self):
        """Regression: bare NaN/Infinity tokens are not strict JSON and
        break every non-Python consumer of the run log."""
        assert json_safe(float("nan")) is None
        assert json_safe(float("inf")) is None
        assert json_safe(float("-inf")) is None
        assert json_safe(np.float64("nan")) is None
        assert json_safe(np.array([1.0, float("inf")])) == [1.0, None]
        assert json_safe({"delta": float("nan")}) == {"delta": None}

    def test_finite_floats_pass_through(self):
        assert json_safe(0.0) == 0.0
        assert json_safe(-1.5) == -1.5


class TestJsonlSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.write(Event("a", 0.1, {"x": np.float64(2.0)}))
        sink.write(Event("b", 0.2, {"y": [1, 2]}))
        sink.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [
            {"event": "a", "t": 0.1, "x": 2.0},
            {"event": "b", "t": 0.2, "y": [1, 2]},
        ]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        sink = JsonlSink(path)
        sink.write(Event("a", 0.0))
        sink.close()
        assert path.exists()

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.write(Event("a", 0.0))

    def test_non_finite_fields_serialise_as_null(self, tmp_path):
        """Regression: the written log must be strict JSON even when an
        instrumented value is NaN/Inf (e.g. delta before first measure)."""
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.write(Event("round", 0.1, {
            "delta": float("nan"),
            "rmse": float("inf"),
            "forces": np.array([1.0, float("-inf")]),
        }))
        sink.close()
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        (row,) = [json.loads(line) for line in text.splitlines()]
        assert row["delta"] is None
        assert row["rmse"] is None
        assert row["forces"] == [1.0, None]

    def test_flush_every_makes_events_visible(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.write(Event("a", 0.1))
        assert path.read_text() == ""  # buffered: below the threshold
        sink.write(Event("b", 0.2))
        assert len(path.read_text().splitlines()) == 2  # auto-flushed
        sink.write(Event("c", 0.3))
        assert len(path.read_text().splitlines()) == 2  # buffered again
        sink.close()
        assert len(path.read_text().splitlines()) == 3

    def test_flush_every_default_buffers_until_close(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        for i in range(50):
            sink.write(Event("tick", float(i), {"i": i}))
        sink.close()
        assert len(path.read_text().splitlines()) == 50

    def test_flush_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "run.jsonl", flush_every=0)


class TestMemorySink:
    def test_dicts_and_clear(self):
        sink = MemorySink()
        sink.write(Event("a", 0.5, {"k": 1}))
        assert sink.dicts() == [{"event": "a", "t": 0.5, "k": 1}]
        sink.clear()
        assert sink.events == []


class TestNullSink:
    def test_drops_everything(self):
        sink = NullSink()
        sink.write(Event("a", 0.0))  # no state to assert; must not raise
        sink.flush()
        sink.close()
