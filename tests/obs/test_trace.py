"""Tests for causal message tracing: trace ids, MessageTracer, NetworkModel."""

import numpy as np
import pytest

from repro.core.cma import NeighborObservation
from repro.obs import Instrumentation, beacon_trace_id, observation_trace_id
from repro.obs.trace import MSG_EVENTS, MessageTracer
from repro.sim.netmodel import (
    BernoulliLink,
    GilbertElliottLink,
    NetworkModel,
    PerfectLink,
    RetryPolicy,
    UniformDelayModel,
)
from repro.sim.radio import Radio

RC = 10.0


class AlwaysLossLink(PerfectLink):
    """Every delivery attempt fails — forces the full retry narration."""

    def delivered(self, sender=-1, receiver=-1, distance=0.0):
        return False


def line_positions(n, spacing=5.0):
    return np.array([[i * spacing, 0.0] for i in range(n)])


def run_exchange(net, positions, round_index=0, tracer=None):
    k = len(positions)
    return net.exchange(
        Radio(RC), positions, [float(i) for i in range(k)], None,
        round_index, tracer=tracer,
    )


class TestTraceIds:
    def test_beacon_trace_id_format(self):
        assert beacon_trace_id(3, 1, 7) == "r3.n1>n7"

    def test_beacon_trace_id_coerces_numpy(self):
        assert beacon_trace_id(np.int64(2), np.int32(0), np.int64(5)) == "r2.n0>n5"

    def test_observation_trace_id_recovers_sent_round(self):
        obs = NeighborObservation(
            node_id=4, position=np.zeros(2), curvature=0.0, staleness=3
        )
        assert observation_trace_id(obs, receiver=9, round_index=10) == "r7.n4>n9"

    def test_fresh_observation_names_current_round(self):
        obs = NeighborObservation(
            node_id=1, position=np.zeros(2), curvature=0.0, staleness=0
        )
        assert observation_trace_id(obs, receiver=2, round_index=5) == "r5.n1>n2"


class TestMessageTracer:
    def _tracer(self):
        obs = Instrumentation.in_memory()
        return MessageTracer(obs), obs

    def test_send_emits_event_and_counter(self):
        tracer, obs = self._tracer()
        tracer.begin_round(2)
        tracer.send(1, 0)
        (event,) = obs.memory_events()
        assert event.name == "msg_send"
        assert event.fields["trace_id"] == "r2.n1>n0"
        assert event.fields["round"] == 2
        assert obs.metrics.snapshot()["net.sent"] == 1

    def test_deliver_reports_lag(self):
        tracer, obs = self._tracer()
        tracer.begin_round(5)
        tracer.deliver(0, 1, sent_round=3)
        (event,) = obs.memory_events()
        assert event.fields["trace_id"] == "r3.n0>n1"
        assert event.fields["lag"] == 2

    def test_use_counts_only_stale_serves(self):
        tracer, obs = self._tracer()
        tracer.begin_round(4)
        tracer.use(0, 1, sent_round=4, staleness=0)
        tracer.use(0, 1, sent_round=2, staleness=2)
        snap = obs.metrics.snapshot()
        assert snap["net.stale_served"] == 1

    def test_every_lifecycle_event_is_in_msg_events(self):
        tracer, obs = self._tracer()
        tracer.begin_round(0)
        tracer.send(0, 1)
        tracer.drop(0, 1, attempt=0)
        tracer.retry(0, 1, attempt=1, backoff_slots=1)
        tracer.lost(0, 1, attempts=3)
        tracer.delay(0, 1, deliver_round=2)
        tracer.deliver(0, 1, sent_round=0)
        tracer.use(0, 1, sent_round=0, staleness=0)
        tracer.expire(0, 1, sent_round=0, age=5)
        names = [e.name for e in obs.memory_events()]
        assert names == list(MSG_EVENTS)
        assert all(
            e.fields["trace_id"] == "r0.n0>n1" for e in obs.memory_events()
        )


def _faulty_network(seed=5):
    return NetworkModel(
        link=GilbertElliottLink(p_fail=0.4, p_recover=0.3, loss_bad=0.9,
                                seed=seed),
        delay=UniformDelayModel(2, seed=9),
        retry=RetryPolicy(max_retries=2),
        max_age=4,
    )


class TestNetworkModelTracing:
    def test_tracing_does_not_perturb_the_exchange(self):
        """Traced and untraced runs must be bit-identical: the tracer may
        not consume RNG draws or mutate caches."""
        pts = line_positions(6)
        plain = _faulty_network()
        traced = _faulty_network()
        obs = Instrumentation.in_memory()
        tracer = MessageTracer(obs)
        for rnd in range(8):
            heard_a = run_exchange(plain, pts, rnd)
            heard_b = run_exchange(traced, pts, rnd, tracer=tracer)
            for got, exp in zip(heard_b, heard_a):
                assert [o.node_id for o in got] == [o.node_id for o in exp]
                assert [o.staleness for o in got] == [o.staleness for o in exp]
                for g, e in zip(got, exp):
                    assert np.array_equal(g.position, e.position)
        assert plain.state_dict() == traced.state_dict()

    def test_stale_observation_chain_is_explainable(self):
        """Acceptance criterion: a stale NeighborObservation's provenance
        must be recoverable from the msg_* events alone."""
        pts = line_positions(6)
        net = _faulty_network()
        obs = Instrumentation.in_memory()
        tracer = MessageTracer(obs)
        stale = None
        for rnd in range(10):
            heard = run_exchange(net, pts, rnd, tracer=tracer)
            for receiver, inbox in enumerate(heard):
                for o in inbox:
                    if o.staleness > 0:
                        stale = (o, receiver, rnd)
            if stale is not None:
                break
        assert stale is not None, "fault injection produced no stale obs"
        o, receiver, rnd = stale
        trace_id = observation_trace_id(o, receiver, rnd)
        chain = [
            e.name for e in obs.memory_events()
            if e.fields.get("trace_id") == trace_id
        ]
        # The chain must start at emission, end in the cache serve that
        # produced the observation, and contain an arrival in between.
        assert chain[0] == "msg_send"
        assert chain[-1] == "msg_use"
        assert "msg_deliver" in chain or "msg_delay" in chain

    def test_lost_beacon_narrates_drops_and_retries(self):
        pts = line_positions(2)
        net = NetworkModel(
            link=AlwaysLossLink(),
            retry=RetryPolicy(max_retries=2),
        )
        obs = Instrumentation.in_memory()
        run_exchange(net, pts, 0, tracer=MessageTracer(obs))
        per_pair = [
            e.name for e in obs.memory_events()
            if e.fields.get("trace_id") == "r0.n1>n0"
        ]
        assert per_pair == [
            "msg_send",
            "msg_drop", "msg_retry", "msg_drop", "msg_retry", "msg_drop",
            "msg_lost",
        ]
        snap = obs.metrics.snapshot()
        assert snap["net.lost"] == 2  # both directions
        assert snap["net.retries"] == 4

    def test_expiry_is_traced(self):
        pts = line_positions(2)
        net = NetworkModel(max_age=1)
        obs = Instrumentation.in_memory()
        tracer = MessageTracer(obs)
        run_exchange(net, pts, 0, tracer=tracer)
        # Nodes move out of range; the cached entries age out at round 2.
        far = np.array([[0.0, 0.0], [500.0, 0.0]])
        run_exchange(net, far, 1, tracer=tracer)
        run_exchange(net, far, 2, tracer=tracer)
        expires = [
            e for e in obs.memory_events() if e.name == "msg_expire"
        ]
        assert len(expires) == 2
        assert all(e.fields["age"] == 2 for e in expires)
        assert all(
            e.fields["trace_id"].startswith("r0.") for e in expires
        )

    def test_no_tracer_emits_nothing(self):
        pts = line_positions(3)
        net = _faulty_network()
        obs = Instrumentation.in_memory()
        run_exchange(net, pts, 0, tracer=None)
        assert obs.memory_events() == []


class TestEngineIntegration:
    def test_instrumented_networked_run_logs_msg_events(self):
        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.obs import use_instrumentation
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=40.0, seed=7, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=8, rc=12.0, rs=6.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=3.0,
        )
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            MobileSimulation(
                problem, resolution=21,
                network=NetworkModel(
                    link=BernoulliLink(probability=0.3, seed=3), max_age=3
                ),
            ).run()
        names = {e.name for e in obs.memory_events()}
        assert "msg_send" in names
        assert "msg_use" in names
        snapshot = obs.metrics.snapshot()
        assert snapshot["net.sent"] > 0

    def test_disabled_instrumentation_builds_no_tracer(self):
        from repro.runtime.cma_phases import ExchangePhase

        phase = ExchangePhase()

        class FakeEngine:
            obs = Instrumentation.disabled()

        assert phase._tracer_for(FakeEngine()) is None

    def test_span_events_carry_round_context(self):
        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.obs import use_instrumentation
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=40.0, seed=7, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=6, rc=12.0, rs=6.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=2.0,
        )
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            MobileSimulation(problem, resolution=21).run()
        spans = [e for e in obs.memory_events() if e.name == "span"]
        assert spans, "instrumented run emitted no spans"
        rounds = {e.fields.get("round") for e in spans}
        assert rounds == {0, 1}
