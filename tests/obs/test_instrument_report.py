"""Tests for the Instrumentation bundle, ambient context, and reporting."""

import json

import pytest

from repro.obs import (
    DISABLED,
    Instrumentation,
    format_summary,
    get_instrumentation,
    load_run_log,
    summarize_events,
    summarize_run_log,
    use_instrumentation,
)


class TestInstrumentation:
    def test_disabled_by_default_ambient(self):
        assert get_instrumentation() is DISABLED
        assert DISABLED.enabled is False

    def test_use_instrumentation_nests(self):
        outer = Instrumentation.in_memory()
        inner = Instrumentation.in_memory()
        with use_instrumentation(outer):
            assert get_instrumentation() is outer
            with use_instrumentation(inner):
                assert get_instrumentation() is inner
            assert get_instrumentation() is outer
        assert get_instrumentation() is DISABLED

    def test_ambient_restored_on_exception(self):
        obs = Instrumentation.in_memory()
        with pytest.raises(RuntimeError):
            with use_instrumentation(obs):
                raise RuntimeError("x")
        assert get_instrumentation() is DISABLED

    def test_disabled_span_is_shared_noop(self):
        obs = Instrumentation.disabled()
        assert obs.span("a") is obs.span("b")
        with obs.span("a"):
            pass
        obs.emit("dropped", x=1)
        assert obs.memory_events() == []

    def test_enabled_span_and_emit(self):
        obs = Instrumentation.in_memory()
        with obs.span("phase"):
            obs.emit("tick", n=3)
        names = [e.name for e in obs.memory_events()]
        assert names == ["tick", "span"]
        assert obs.metrics.summary("span.phase").count == 1

    def test_close_flushes_metrics_snapshot(self):
        obs = Instrumentation.in_memory()
        obs.counter("c").inc(5)
        obs.close()
        last = obs.memory_events()[-1]
        assert last.name == "metrics"
        assert last.fields["snapshot"]["c"] == 5

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Instrumentation.to_jsonl(path) as obs:
            obs.emit("tick")
        rows = load_run_log(path)
        assert [r["event"] for r in rows] == ["tick", "metrics"]


class TestLoadRunLog:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a", "t": 0.0}\n\n{"event": "b", "t": 1.0}\n')
        assert [r["event"] for r in load_run_log(path)] == ["a", "b"]

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_run_log(path)

    def test_rejects_non_event_rows(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"t": 0.0}\n')
        with pytest.raises(ValueError, match="missing 'event'"):
            load_run_log(path)

    def test_tolerates_crash_truncated_final_line(self, tmp_path):
        # A process dying mid-write leaves a partial last line; the
        # intact prefix must still load.
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"event": "a", "t": 0.0}\n{"event": "b", "t": 1.0}\n'
            '{"event": "c", "t"'
        )
        assert [r["event"] for r in load_run_log(path)] == ["a", "b"]

    def test_rejects_garbage_mid_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a", "t": 0.0}\nnot json\n{"event": "b"}\n')
        with pytest.raises(ValueError, match="run.jsonl:2: not valid JSON"):
            load_run_log(path)


def synthetic_events():
    events = []
    for i in range(4):
        events.append({
            "event": "span", "t": 0.1 * i, "phase": "step",
            "path": "step", "dur_s": 0.10, "depth": 0,
        })
        events.append({
            "event": "span", "t": 0.1 * i, "phase": "sense",
            "path": "step/sense", "dur_s": 0.06, "depth": 1,
        })
        events.append({
            "event": "round", "t": 0.1 * i, "round": i, "sim_t": 600.0 + i,
            "delta": 100.0 - i, "rmse": 1.0, "connected": i != 2,
            "n_components": 2 if i == 2 else 1, "n_alive": 9,
            "n_moved": 3, "n_lcm_moves": 1, "n_trace_samples": 2,
        })
    events.append({
        "event": "fra_refine", "t": 0.5, "i": 5, "x": 1.0, "y": 2.0,
        "kind": "refine", "err_before": 9.0, "err_after": 4.0, "budget": 7,
    })
    events.append({
        "event": "fra_stop", "t": 0.6, "reason": "foresight", "budget": 3,
        "n_selected": 5, "relays_required": 3,
    })
    events.append({"event": "fra_relays", "t": 0.7, "n_relays": 3,
                   "budget_after": 0})
    events.append({"event": "metrics", "t": 0.8,
                   "snapshot": {"lcm.moves": 4.0,
                                "round.delta": {"count": 4, "mean": 98.5,
                                                "p95": 99.85}}})
    return events


class TestSummarize:
    def test_phase_shares(self):
        summary = summarize_events(synthetic_events())
        by_path = {p.path: p for p in summary.phases}
        assert by_path["step"].count == 4
        assert by_path["step"].share == pytest.approx(1.0)
        # Child share is measured against the root total.
        assert by_path["step/sense"].share == pytest.approx(0.6)
        assert by_path["step/sense"].mean_s == pytest.approx(0.06)

    def test_round_aggregates(self):
        rounds = summarize_events(synthetic_events()).rounds
        assert rounds.n_rounds == 4
        assert rounds.delta_first == 100.0
        assert rounds.delta_final == 97.0
        assert rounds.delta_min == 97.0
        assert rounds.delta_mean == pytest.approx(98.5)
        assert rounds.components_max == 2
        assert rounds.n_disconnected_rounds == 1
        assert rounds.moves_total == 12
        assert rounds.lcm_moves_total == 4
        assert rounds.trace_samples_total == 8
        assert rounds.alive_final == 9

    def test_nan_deltas_ignored_in_mean(self):
        events = synthetic_events()
        events[2]["delta"] = float("nan")
        rounds = summarize_events(events).rounds
        assert rounds.delta_mean == pytest.approx((99 + 98 + 97) / 3)

    def test_fra_aggregates(self):
        fra = summarize_events(synthetic_events()).fra
        assert fra.n_iterations == 1
        assert fra.err_first == 9.0
        assert fra.err_last == 4.0
        assert fra.relays_planned == 3
        assert fra.budget_final == 3
        assert fra.stop_reason == "foresight"

    def test_no_rounds_no_fra(self):
        summary = summarize_events([{"event": "span", "t": 0.0,
                                     "path": "x", "dur_s": 0.1, "depth": 0}])
        assert summary.rounds is None
        assert summary.fra is None

    def test_metrics_snapshot_surfaces(self):
        summary = summarize_events(synthetic_events())
        assert summary.metrics["lcm.moves"] == 4.0


class TestFormatSummary:
    def test_contains_percentages_and_aggregates(self):
        text = format_summary(summarize_events(synthetic_events()),
                              title="test-run")
        assert "test-run" in text
        assert "step/sense" in text
        assert "60.0%" in text
        assert "delta: first=100" in text
        assert "components: max=2" in text
        assert "lcm repair moves: 4" in text
        assert "refinement iterations: 1" in text

    def test_roundtrip_through_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with path.open("w") as fh:
            for row in synthetic_events():
                fh.write(json.dumps(row) + "\n")
        summary = summarize_run_log(path)
        assert summary.n_events == len(synthetic_events())
        text = format_summary(summary)
        assert "-- phase wall time --" in text
