"""Tests for run diffing and the health-rule engine."""

import json

from repro.obs import Event, EventBus, MemorySink
from repro.obs.diff import diff_run_logs, diff_runs, format_diff
from repro.obs.health import (
    DeadFleetRule,
    DeltaStallRule,
    DisconnectionBurstRule,
    DivergenceRule,
    HealthMonitor,
    HealthSink,
    check_events,
    check_run_log,
    default_rules,
    format_alerts,
)


def _round(i, delta, **extra):
    row = {"event": "round", "t": float(i), "round": i, "delta": delta,
           "rmse": 1.0, "connected": True, "n_components": 1,
           "n_alive": 8, "n_moved": 2}
    row.update(extra)
    return row


def _span(path, t, dur):
    return {"event": "span", "t": t, "phase": path.rsplit("/", 1)[-1],
            "path": path, "dur_s": dur, "depth": path.count("/")}


class TestDiffRuns:
    def test_identical_runs(self):
        rows = [_round(0, 3.0), _round(1, 2.5)]
        diff = diff_runs(rows, [dict(r) for r in rows])
        assert diff.identical
        assert diff.first_divergent_round is None
        assert diff.first_divergent_event is None

    def test_wall_clock_never_diverges(self):
        a = [_round(0, 3.0)]
        b = [dict(a[0], t=99.0)]
        assert diff_runs(a, b).identical

    def test_first_divergent_round_names_field_and_values(self):
        a = [_round(0, 3.0), _round(1, 2.5), _round(2, 2.0)]
        b = [_round(0, 3.0), _round(1, 2.6), _round(2, 1.9)]
        diff = diff_runs(a, b)
        d = diff.first_divergent_round
        assert (d.round, d.field) == (1, "delta")
        assert (d.value_a, d.value_b) == (2.5, 2.6)

    def test_first_divergent_event_can_precede_the_round(self):
        a = [{"event": "lcm_pass", "t": 0.1, "round": 0, "moves": 0},
             _round(0, 3.0)]
        b = [{"event": "lcm_pass", "t": 0.1, "round": 0, "moves": 2},
             _round(0, 3.0)]
        diff = diff_runs(a, b)
        assert diff.first_divergent_round is None
        e = diff.first_divergent_event
        assert e.index == 0
        assert e.kind == "lcm_pass"

    def test_timing_events_excluded_from_event_sequence(self):
        a = [_span("step", 1.0, 0.5), _round(0, 3.0)]
        b = [_span("step", 1.0, 0.9), _round(0, 3.0),
             {"event": "metrics", "t": 2.0, "snapshot": {"x": 1}}]
        assert diff_runs(a, b).identical

    def test_truncated_run_reports_stream_end(self):
        a = [_round(0, 3.0), _round(1, 2.5)]
        b = [_round(0, 3.0)]
        diff = diff_runs(a, b)
        assert not diff.identical
        assert diff.first_divergent_round.field == "<missing round>"
        e = diff.first_divergent_event
        assert e.index == 1 and e.event_b is None

    def test_tolerance_forgives_small_float_drift(self):
        a = [_round(0, 3.0)]
        b = [_round(0, 3.0 + 1e-12)]
        assert not diff_runs(a, b).identical
        assert diff_runs(a, b, rtol=1e-9).identical

    def test_nan_equals_nan(self):
        a = [_round(0, float("nan"))]
        b = [_round(0, float("nan"))]
        assert diff_runs(a, b).identical

    def test_phase_deltas_are_informational(self):
        a = [_span("step", 1.0, 0.5), _round(0, 3.0)]
        b = [_span("step", 1.0, 1.0), _round(0, 3.0)]
        diff = diff_runs(a, b)
        assert diff.identical
        (delta,) = diff.phase_deltas
        assert delta.path == "step"
        assert delta.pct == 100.0

    def test_format_mentions_divergence(self):
        a = [_round(0, 3.0)]
        b = [_round(0, 2.9)]
        text = format_diff(diff_runs(a, b), "a.jsonl", "b.jsonl")
        assert "first divergent round: 0" in text
        assert "'delta'" in text

    def test_diff_run_logs_roundtrip(self, tmp_path):
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        pa.write_text(json.dumps(_round(0, 3.0)) + "\n")
        pb.write_text(json.dumps(_round(0, 2.0)) + "\n")
        diff = diff_run_logs(pa, pb)
        assert diff.first_divergent_round.round == 0


class TestHealthRules:
    def test_delta_stall_fires_once_and_rearms(self):
        rule = DeltaStallRule(window=3, min_improvement=0.1)
        rows = [_round(i, 5.0) for i in range(6)]
        alerts = [a for r in rows for a in rule.feed(r)]
        assert [a.round for a in alerts] == [3]
        # Improvement re-arms; a second stall fires again.
        assert rule.feed(_round(6, 1.0)) == []
        rows = [_round(7 + i, 1.0) for i in range(4)]
        alerts = [a for r in rows for a in rule.feed(r)]
        assert [a.round for a in alerts] == [9]

    def test_divergence_needs_consecutive_rises(self):
        rule = DivergenceRule(streak=3)
        deltas = [1.0, 2.0, 3.0, 2.5, 3.0, 3.5, 4.0]
        fired = [
            a.round
            for i, d in enumerate(deltas)
            for a in rule.feed(_round(i, d))
        ]
        # Rise at rounds 1, 2 (streak 2, reset), then 4, 5, 6 → fires at 6.
        assert fired == [6]

    def test_dead_fleet_fires_on_zero_alive(self):
        rule = DeadFleetRule()
        assert rule.feed(_round(0, 3.0, n_alive=4)) == []
        (alert,) = rule.feed(_round(1, 3.0, n_alive=0))
        assert alert.severity == "critical"
        assert rule.feed(_round(2, 3.0, n_alive=0)) == []

    def test_disconnection_burst_sliding_window(self):
        rule = DisconnectionBurstRule(window=4, threshold=2)
        rows = [
            _round(0, 3.0, connected=False),
            _round(1, 3.0, connected=True),
            _round(2, 3.0, connected=False),
        ]
        alerts = [a for r in rows for a in rule.feed(r)]
        assert [a.round for a in alerts] == [2]

    def test_non_round_events_are_ignored(self):
        monitor = HealthMonitor()
        assert monitor.feed({"event": "msg_send", "t": 0.0}) == []

    def test_check_events_collects_across_rules(self):
        rows = [_round(i, 3.0, n_alive=0, connected=False)
                for i in range(25)]
        alerts = check_events(rows)
        assert {a.rule for a in alerts} >= {"dead_fleet",
                                            "disconnection_burst"}

    def test_default_rules_are_fresh_instances(self):
        a, b = default_rules(), default_rules()
        assert all(x is not y for x, y in zip(a, b))

    def test_check_run_log(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("".join(
            json.dumps(_round(i, 3.0, n_alive=0)) + "\n" for i in range(2)
        ))
        alerts = check_run_log(path)
        assert [a.rule for a in alerts] == ["dead_fleet"]

    def test_format_alerts(self):
        assert "no alerts" in format_alerts([])
        alerts = check_events([_round(0, 3.0, n_alive=0)])
        assert "dead_fleet" in format_alerts(alerts)


class TestHealthSink:
    def test_alerts_land_on_the_same_bus(self):
        sink = MemorySink()
        bus = EventBus([sink])
        bus.add_sink(HealthSink(bus))
        bus.emit("round", **{k: v for k, v in _round(0, 3.0, n_alive=0).items()
                             if k not in ("event", "t")})
        names = [e.name for e in sink.events]
        assert names == ["round", "alert"]
        alert = sink.events[1]
        assert alert.fields["rule"] == "dead_fleet"

    def test_sink_ignores_alert_events(self):
        bus = EventBus([])
        health = HealthSink(bus)
        health.write(Event("alert", 0.0, {"rule": "dead_fleet", "round": 0,
                                          "severity": "critical",
                                          "message": "x"}))
        assert health.monitor.alerts == []
