"""Robustness of the run-log reader: empty, truncated, malformed logs."""

import json

import pytest

from repro.obs.report import (
    load_run_log,
    summarize_events,
    summarize_run_log,
)


def _round(i, delta):
    return {"event": "round", "t": float(i), "round": i, "delta": delta,
            "rmse": 1.0, "connected": True, "n_components": 1,
            "n_alive": 8, "n_moved": 2, "n_lcm_moves": 0, "mean_force": 0.1,
            "n_trace_samples": 0}


class TestLoadRunLog:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        assert load_run_log(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("\n" + json.dumps(_round(0, 3.0)) + "\n\n\n")
        assert len(load_run_log(path)) == 1

    def test_crash_truncated_tail_is_dropped(self, tmp_path):
        """A process dying mid-write leaves a torn final line; the intact
        prefix must still load."""
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(_round(0, 3.0)) + "\n"
            + json.dumps(_round(1, 2.5)) + "\n"
            + '{"event": "round", "round": 2, "del'
        )
        events = load_run_log(path)
        assert [e["round"] for e in events] == [0, 1]

    def test_garbage_mid_file_raises_with_line_number(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(_round(0, 3.0)) + "\n"
            + "not json at all\n"
            + json.dumps(_round(1, 2.5)) + "\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            load_run_log(path)

    def test_garbage_only_file_raises(self, tmp_path):
        """A torn first line with nothing before it is not a truncated
        log — it is not a run log at all."""
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "round", "rou')
        with pytest.raises(ValueError):
            load_run_log(path)

    def test_non_event_row_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"no_event": 1}\n')
        with pytest.raises(ValueError, match="missing 'event'"):
            load_run_log(path)

    def test_non_dict_row_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("[1, 2, 3]\n" + json.dumps(_round(0, 3.0)) + "\n")
        with pytest.raises(ValueError, match="missing 'event'"):
            load_run_log(path)


class TestSummarizeRobustness:
    def test_summary_of_empty_log(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        summary = summarize_run_log(path)
        assert summary.n_events == 0
        assert summary.duration_s == 0.0
        assert summary.rounds is None
        assert summary.phases == []

    def test_summary_of_crash_truncated_log(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(_round(0, 3.0)) + "\n"
            + json.dumps(_round(1, 2.5)) + "\n"
            + '{"event": "round", "round": 2'
        )
        summary = summarize_run_log(path)
        assert summary.rounds.n_rounds == 2
        assert summary.rounds.delta_final == 2.5

    def test_summary_tolerates_rows_without_timestamps(self):
        summary = summarize_events([
            {"event": "round", "round": 0, "delta": 3.0},
        ])
        assert summary.duration_s == 0.0
        assert summary.rounds.n_rounds == 1

    def test_summary_with_nan_deltas(self):
        rows = [_round(0, float("nan")), _round(1, 2.0)]
        summary = summarize_events(rows)
        assert summary.rounds.delta_min == 2.0
        assert summary.rounds.delta_mean == 2.0
