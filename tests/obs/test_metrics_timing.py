"""Tests for the metrics registry and the phase timers."""

import numpy as np
import pytest

from repro.obs import EventBus, MemorySink, MetricsRegistry, PhaseTimer
from repro.obs.metrics import Summary
from repro.obs.timing import NULL_SPAN


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.set(-2)
        assert gauge.value == -2.0


class TestSummary:
    def test_exact_stats(self):
        summary = Summary("s")
        for v in [1.0, 2.0, 3.0, 4.0]:
            summary.observe(v)
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.mean == 2.5
        assert summary.min == 1.0
        assert summary.max == 4.0
        assert summary.quantile(0.5) == 2.5

    def test_reservoir_bounds_memory(self):
        summary = Summary("s", max_samples=16)
        for v in range(1000):
            summary.observe(float(v))
        assert summary.count == 1000
        assert len(summary._samples) == 16
        assert summary.min == 0.0 and summary.max == 999.0
        # The reservoir stays representative of the whole stream.
        assert 100.0 < summary.quantile(0.5) < 900.0

    def test_empty_snapshot(self):
        snap = Summary("s").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Summary("s").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.0)
        reg.summary("s").observe(3.0)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.0
        assert snap["s"]["count"] == 1
        assert "a" not in reg and "c" in reg
        assert len(reg) == 3


class TestPhaseTimer:
    def test_span_durations_recorded(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(registry=reg)
        with timer.span("work") as span:
            pass
        assert span.dur_s is not None and span.dur_s >= 0.0
        assert reg.summary("span.work").count == 1

    def test_nested_paths(self):
        sink = MemorySink()
        timer = PhaseTimer(bus=EventBus([sink]))
        with timer.span("step"):
            with timer.span("sense"):
                pass
            with timer.span("plan"):
                with timer.span("forces"):
                    pass
        paths = [e.fields["path"] for e in sink.events]
        # Inner spans close (and emit) before outer ones.
        assert paths == ["step/sense", "step/plan/forces", "step/plan", "step"]
        depths = [e.fields["depth"] for e in sink.events]
        assert depths == [1, 2, 1, 0]

    def test_current_path_tracks_stack(self):
        timer = PhaseTimer()
        assert timer.current_path == ""
        with timer.span("a"):
            with timer.span("b"):
                assert timer.current_path == "a/b"
            assert timer.current_path == "a"
        assert timer.current_path == ""

    def test_exception_still_closes_span(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(registry=reg)
        with pytest.raises(RuntimeError):
            with timer.span("boom"):
                raise RuntimeError("x")
        assert timer.current_path == ""
        assert reg.summary("span.boom").count == 1

    def test_outer_span_covers_inner(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(registry=reg)
        with timer.span("outer"):
            with timer.span("inner"):
                x = np.arange(1000).sum()
        assert x == 499500
        outer = reg.summary("span.outer").snapshot()["total"]
        inner = reg.summary("span.outer/inner").snapshot()["total"]
        assert outer >= inner


class TestNullSpan:
    def test_null_span_is_reusable_noop(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass
