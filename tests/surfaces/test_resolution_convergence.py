"""Numerical-analysis checks: δ converges as the evaluation grid refines.

The δ integral is approximated by a grid sum; its value must stabilise as
the grid refines, or every experiment's numbers would be resolution
artefacts.
"""

import numpy as np
import pytest

from repro.fields.analytic import GaussianBump, GaussianMixtureField, PlaneField
from repro.fields.base import sample_grid
from repro.geometry.primitives import BoundingBox
from repro.surfaces.reconstruction import reconstruct_surface

REGION = BoundingBox.square(100.0)


@pytest.fixture(scope="module")
def smooth_field():
    return GaussianMixtureField(
        [
            GaussianBump(cx=30.0, cy=40.0, sigma=10.0, amplitude=5.0),
            GaussianBump(cx=70.0, cy=65.0, sigma=14.0, amplitude=3.0),
        ],
        baseline=1.0,
    )


@pytest.fixture(scope="module")
def sample_positions():
    rng = np.random.default_rng(3)
    corners = np.array([(0, 0), (100, 0), (100, 100), (0, 100)], dtype=float)
    return np.vstack([corners, rng.uniform(5, 95, size=(30, 2))])


class TestDeltaConvergence:
    def deltas_at(self, field, positions, resolutions):
        out = []
        for res in resolutions:
            reference = sample_grid(field, REGION, res)
            recon = reconstruct_surface(reference, positions, field=field)
            out.append(recon.delta)
        return out

    def test_delta_stabilises(self, smooth_field, sample_positions):
        d51, d101, d201 = self.deltas_at(
            smooth_field, sample_positions, (51, 101, 201)
        )
        # Successive refinements must agree progressively better.
        assert abs(d101 - d201) < abs(d51 - d201) + 1e-9
        assert abs(d101 - d201) / d201 < 0.05

    def test_plane_zero_at_all_resolutions(self, sample_positions):
        plane = PlaneField(a=0.3, b=-0.2, c=5.0)
        for res in (31, 71, 141):
            reference = sample_grid(plane, REGION, res)
            recon = reconstruct_surface(
                reference, sample_positions, field=plane
            )
            assert recon.delta < 1e-6

    def test_rmse_also_converges(self, smooth_field, sample_positions):
        rmses = []
        for res in (51, 201):
            reference = sample_grid(smooth_field, REGION, res)
            rmses.append(
                reconstruct_surface(
                    reference, sample_positions, field=smooth_field
                ).rmse
            )
        assert abs(rmses[0] - rmses[1]) / rmses[1] < 0.1
