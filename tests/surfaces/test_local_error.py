"""Tests for the FRA local-error array and argmax selection."""

import numpy as np
import pytest

from repro.geometry.interpolation import LinearSurfaceInterpolator
from repro.surfaces.local_error import argmax_grid, local_error_grid


class TestLocalErrorGrid:
    def test_zero_at_sample_vertices(self, bump_reference):
        ref = bump_reference
        corners = np.array(
            [
                [ref.xs[0], ref.ys[0]],
                [ref.xs[-1], ref.ys[0]],
                [ref.xs[-1], ref.ys[-1]],
                [ref.xs[0], ref.ys[-1]],
            ]
        )
        values = np.array(
            [
                ref.values[0, 0],
                ref.values[0, -1],
                ref.values[-1, -1],
                ref.values[-1, 0],
            ]
        )
        interp = LinearSurfaceInterpolator(corners, values)
        err = local_error_grid(ref, interp)
        assert err.shape == ref.values.shape
        assert np.isclose(err[0, 0], 0.0, atol=1e-9)
        assert np.isclose(err[-1, -1], 0.0, atol=1e-9)
        assert err.max() > 0.1  # the bumps are not planar

    def test_error_nonnegative(self, bump_reference):
        ref = bump_reference
        pts = np.array([[10.0, 10.0], [90.0, 10.0], [50.0, 90.0]])
        from repro.fields.grid import GridField

        interp = LinearSurfaceInterpolator(pts, GridField(ref).sample(pts))
        err = local_error_grid(ref, interp)
        assert (err >= 0).all()


class TestArgmax:
    def test_basic(self):
        err = np.zeros((3, 4))
        err[2, 1] = 5.0
        assert argmax_grid(err) == (1, 2)

    def test_tie_breaks_row_major(self):
        err = np.ones((2, 2))
        assert argmax_grid(err) == (0, 0)

    def test_exclusion(self):
        err = np.zeros((2, 2))
        err[0, 0] = 5.0
        err[1, 1] = 3.0
        exclude = np.zeros((2, 2), dtype=bool)
        exclude[0, 0] = True
        assert argmax_grid(err, exclude=exclude) == (1, 1)

    def test_all_excluded_raises(self):
        err = np.ones((2, 2))
        with pytest.raises(ValueError):
            argmax_grid(err, exclude=np.ones((2, 2), dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            argmax_grid(np.ones((2, 2)), exclude=np.zeros((3, 3), dtype=bool))
