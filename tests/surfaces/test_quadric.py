"""Tests for the on-node quadric least-squares curvature estimator."""

import numpy as np
import pytest

from repro.surfaces.quadric import (
    QuadricFit,
    QuadricFitMode,
    fit_quadric,
    gaussian_curvature_from_quadric,
    principal_curvatures,
)


def disk_samples(center, radius, spacing=1.0):
    """Grid positions within a disk, like the sensing model produces."""
    cx, cy = center
    xs = np.arange(cx - radius, cx + radius + spacing / 2, spacing)
    ys = np.arange(cy - radius, cy + radius + spacing / 2, spacing)
    xx, yy = np.meshgrid(xs, ys)
    mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2
    return np.column_stack([xx[mask], yy[mask]])


class TestPrincipalCurvatures:
    def test_eqn_12_13(self):
        g1, g2 = principal_curvatures(2.0, 0.0, 1.0)
        # a+c = 3, sqrt((a-c)^2+b^2) = 1 -> g1=2, g2=4.
        assert (g1, g2) == (2.0, 4.0)

    def test_symmetric_case(self):
        g1, g2 = principal_curvatures(1.0, 0.0, 1.0)
        assert g1 == g2 == 2.0


class TestExactQuadrics:
    def test_recovers_pure_quadric(self):
        pts = disk_samples((0.0, 0.0), 5.0)
        a, b, c = 0.3, -0.2, 0.5
        z = a * pts[:, 0] ** 2 + b * pts[:, 0] * pts[:, 1] + c * pts[:, 1] ** 2
        for mode in QuadricFitMode:
            fit = fit_quadric(pts, z, center=(0.0, 0.0), mode=mode)
            assert np.isclose(fit.a, a, atol=1e-9)
            assert np.isclose(fit.b, b, atol=1e-9)
            assert np.isclose(fit.c, c, atol=1e-9)
            assert fit.residual < 1e-9

    def test_centered_mode_translation_invariant(self):
        center = (40.0, 60.0)
        pts = disk_samples(center, 5.0)
        dx = pts[:, 0] - center[0]
        dy = pts[:, 1] - center[1]
        z = 0.2 * dx**2 + 0.1 * dx * dy - 0.3 * dy**2 + 2.0 * dx + 7.0
        fit = fit_quadric(pts, z, center=center, mode=QuadricFitMode.CENTERED)
        assert np.isclose(fit.a, 0.2, atol=1e-9)
        assert np.isclose(fit.b, 0.1, atol=1e-9)
        assert np.isclose(fit.c, -0.3, atol=1e-9)
        assert np.isclose(fit.d, 2.0, atol=1e-9)
        assert np.isclose(fit.f, 7.0, atol=1e-9)

    def test_plane_has_zero_curvature_centered(self):
        pts = disk_samples((10.0, 10.0), 5.0)
        z = 3.0 * pts[:, 0] - 2.0 * pts[:, 1] + 5.0
        g = gaussian_curvature_from_quadric(
            pts, z, center=(10.0, 10.0), mode=QuadricFitMode.CENTERED
        )
        assert np.isclose(g, 0.0, atol=1e-12)

    def test_paper_mode_biased_on_tilted_plane(self):
        """The documented flaw of the literal Eqn. 11 formulation."""
        pts = disk_samples((10.0, 10.0), 5.0)
        z = 3.0 * pts[:, 0] - 2.0 * pts[:, 1] + 5.0
        g = gaussian_curvature_from_quadric(
            pts, z, center=(10.0, 10.0), mode=QuadricFitMode.PAPER
        )
        assert g > 1e-4  # spurious curvature


class TestGaussianCurvature:
    def test_bump_center_estimate(self, bump_field):
        bump = bump_field.bumps[0]
        pts = disk_samples((bump.cx, bump.cy), 5.0)
        z = bump_field(pts[:, 0], pts[:, 1])
        g = gaussian_curvature_from_quadric(
            pts, z, center=(bump.cx, bump.cy), mode=QuadricFitMode.CENTERED
        )
        expected = (bump.amplitude / bump.sigma**2) ** 2
        assert np.isclose(g, expected, rtol=0.25)

    def test_signed_flag(self):
        pts = disk_samples((0.0, 0.0), 5.0)
        z = 0.1 * pts[:, 0] * pts[:, 1]  # saddle: negative K
        signed = gaussian_curvature_from_quadric(pts, z, signed=True)
        unsigned = gaussian_curvature_from_quadric(pts, z, signed=False)
        assert signed < 0
        assert unsigned == -signed


class TestValidation:
    def test_too_few_samples(self):
        pts = np.zeros((2, 2))
        with pytest.raises(ValueError):
            fit_quadric(pts, np.zeros(2), mode=QuadricFitMode.PAPER)
        with pytest.raises(ValueError):
            fit_quadric(np.zeros((5, 2)), np.zeros(5), mode=QuadricFitMode.CENTERED)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_quadric(np.zeros((6, 2)), np.zeros(5))

    def test_quadric_fit_methods(self):
        fit = QuadricFit(a=1.0, b=0.0, c=1.0, d=0, e=0, f=0, residual=0.0)
        assert fit.principal_curvatures() == (2.0, 2.0)
        assert fit.gaussian_curvature() == 4.0
