"""Tests for the alternative reconstruction interpolators."""

import numpy as np
import pytest

from repro.fields.base import sample_grid
from repro.fields.analytic import PlaneField
from repro.geometry.primitives import BoundingBox
from repro.surfaces.interpolators import (
    IDWInterpolator,
    NearestNeighborInterpolator,
    make_interpolator,
    reconstruct_with,
)

REGION = BoundingBox.square(10.0)


@pytest.fixture
def samples(rng):
    pts = rng.uniform(0, 10, size=(12, 2))
    values = rng.normal(size=12)
    return pts, values


class TestNearestNeighbor:
    def test_exact_at_samples(self, samples):
        pts, values = samples
        interp = NearestNeighborInterpolator(pts, values)
        assert np.allclose(interp(pts[:, 0], pts[:, 1]), values)

    def test_piecewise_constant(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        interp = NearestNeighborInterpolator(pts, np.array([1.0, 5.0]))
        assert interp(2.0, 0.0) == 1.0
        assert interp(8.0, 0.0) == 5.0

    def test_scalar_and_grid(self, samples):
        pts, values = samples
        interp = NearestNeighborInterpolator(pts, values)
        assert isinstance(interp(1.0, 1.0), float)
        grid = interp.evaluate_grid(np.linspace(0, 10, 5), np.linspace(0, 10, 4))
        assert grid.shape == (4, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            NearestNeighborInterpolator(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            NearestNeighborInterpolator(np.empty((0, 2)), np.empty(0))


class TestIDW:
    def test_exact_at_samples(self, samples):
        pts, values = samples
        interp = IDWInterpolator(pts, values)
        out = interp(pts[:, 0], pts[:, 1])
        assert np.allclose(out, values)
        assert np.isfinite(out).all()

    def test_bounded_by_sample_range(self, samples):
        pts, values = samples
        interp = IDWInterpolator(pts, values)
        q = np.random.default_rng(1).uniform(0, 10, size=(100, 2))
        out = interp(q[:, 0], q[:, 1])
        assert out.min() >= values.min() - 1e-9
        assert out.max() <= values.max() + 1e-9

    def test_power_controls_locality(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        values = np.array([0.0, 10.0])
        soft = IDWInterpolator(pts, values, power=1.0)
        sharp = IDWInterpolator(pts, values, power=8.0)
        # Near the first sample, high power hugs the local value harder.
        assert sharp(2.0, 0.0) < soft(2.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IDWInterpolator(np.zeros((2, 2)), np.zeros(2), power=0.0)


class TestFactoryAndScoring:
    def test_factory_methods(self, samples):
        pts, values = samples
        for method in ("delaunay", "nearest", "idw"):
            interp = make_interpolator(method, pts, values)
            assert np.isfinite(interp(5.0, 5.0))
        with pytest.raises(ValueError):
            make_interpolator("kriging", pts, values)

    def test_reconstruct_with_plane(self):
        plane = PlaneField(a=1.0, b=1.0)
        reference = sample_grid(plane, REGION, 21)
        pts = np.array([(0, 0), (10, 0), (10, 10), (0, 10), (5, 5)], dtype=float)
        values = plane(pts[:, 0], pts[:, 1])
        dt = reconstruct_with("delaunay", reference, pts, values)
        nn = reconstruct_with("nearest", reference, pts, values)
        # Linear surface: DT is exact, piecewise-constant NN cannot be.
        assert dt.delta < 1e-6
        assert nn.delta > 1.0

    def test_delaunay_dominates_on_smooth_field(self, bump_reference):
        from repro.fields.grid import GridField

        rng = np.random.default_rng(2)
        pts = np.vstack(
            [
                np.array([(0, 0), (100, 0), (100, 100), (0, 100)], dtype=float),
                rng.uniform(0, 100, size=(40, 2)),
            ]
        )
        values = GridField(bump_reference).sample(pts)
        deltas = {
            m: reconstruct_with(m, bump_reference, pts, values).delta
            for m in ("delaunay", "nearest", "idw")
        }
        assert deltas["delaunay"] <= min(deltas["nearest"], deltas["idw"])
