"""Tests for the δ metric and friends (Theorem 3.1)."""

import numpy as np
import pytest

from repro.fields.base import GridSample
from repro.surfaces.metrics import (
    max_absolute_error,
    normalized_delta,
    rmse,
    volume_difference,
    volume_difference_union_intersection,
    volume_under_surface,
)


def grid(values, side=10.0):
    values = np.asarray(values, dtype=float)
    xs = np.linspace(0, side, values.shape[1])
    ys = np.linspace(0, side, values.shape[0])
    return GridSample(xs=xs, ys=ys, values=values)


class TestVolume:
    def test_constant_surface(self):
        gs = grid(np.full((11, 11), 2.0))
        # 121 cells x area 1 each x height 2.
        assert np.isclose(volume_under_surface(gs), 242.0)


class TestDelta:
    def test_identical_surfaces(self):
        a = grid(np.random.default_rng(0).normal(size=(5, 5)))
        assert volume_difference(a, a) == 0.0

    def test_constant_offset(self):
        a = grid(np.zeros((5, 5)))
        b = grid(np.full((5, 5), 3.0))
        # 25 cells x (10/4)^2 area x 3.
        assert np.isclose(volume_difference(a, b), 25 * 6.25 * 3.0)

    def test_symmetry(self, rng):
        a = grid(rng.normal(size=(6, 6)))
        b = grid(rng.normal(size=(6, 6)))
        assert np.isclose(volume_difference(a, b), volume_difference(b, a))

    def test_triangle_inequality(self, rng):
        a = grid(rng.normal(size=(6, 6)))
        b = grid(rng.normal(size=(6, 6)))
        c = grid(rng.normal(size=(6, 6)))
        assert volume_difference(a, c) <= (
            volume_difference(a, b) + volume_difference(b, c) + 1e-9
        )

    def test_theorem_31_equivalence(self, rng):
        """Eqn. 2 (abs integral) equals Eqn. 3 (union minus intersection)."""
        a = grid(rng.normal(size=(8, 8)))
        b = grid(rng.normal(size=(8, 8)))
        assert np.isclose(
            volume_difference(a, b),
            volume_difference_union_intersection(a, b),
        )

    def test_different_grids_rejected(self):
        a = grid(np.zeros((5, 5)))
        b = grid(np.zeros((6, 6)))
        with pytest.raises(ValueError):
            volume_difference(a, b)

    def test_different_extent_rejected(self):
        a = grid(np.zeros((5, 5)), side=10.0)
        b = grid(np.zeros((5, 5)), side=20.0)
        with pytest.raises(ValueError):
            volume_difference(a, b)


class TestOtherMetrics:
    def test_rmse(self):
        a = grid(np.zeros((4, 4)))
        b = grid(np.full((4, 4), 2.0))
        assert rmse(a, b) == 2.0

    def test_max_error(self, rng):
        a = grid(np.zeros((4, 4)))
        values = np.zeros((4, 4))
        values[2, 3] = -7.0
        b = grid(values)
        assert max_absolute_error(a, b) == 7.0

    def test_normalized_delta_is_mean_abs_error(self):
        a = grid(np.zeros((11, 11)))
        b = grid(np.full((11, 11), 3.0))
        # Mean |err| is 3, up to the fencepost factor (n/(n-1))^2 of the
        # point-sum Riemann integral: 121 points x 1 m^2 over a 100 m^2 box.
        assert np.isclose(normalized_delta(a, b), 3.0 * 121 / 100)
