"""Tests for grid curvature against analytic ground truth."""

import numpy as np
import pytest

from repro.fields.analytic import PlaneField, SaddleField
from repro.fields.base import sample_grid
from repro.geometry.primitives import BoundingBox
from repro.surfaces.curvature import grid_curvatures, grid_gaussian_curvature


class TestKnownSurfaces:
    def test_plane_zero_curvature(self):
        gs = sample_grid(PlaneField(a=2.0, b=-1.0, c=3.0), BoundingBox.square(10.0), 21)
        curv = grid_curvatures(gs)
        assert np.allclose(curv.gaussian, 0.0, atol=1e-9)
        assert np.allclose(curv.mean, 0.0, atol=1e-9)

    def test_saddle_negative_gaussian(self):
        # z = s*x*y has K = -s^2 / (1 + s^2(x^2+y^2))^2 < 0 everywhere.
        s = 0.1
        gs = sample_grid(
            SaddleField(scale=s, center=(5.0, 5.0)), BoundingBox.square(10.0), 41
        )
        curv = grid_gaussian_curvature(gs)
        interior = curv[5:-5, 5:-5]
        assert (interior < 0).all()
        # At the saddle center: K = -s^2.
        assert np.isclose(curv[20, 20], -(s**2), rtol=0.05)

    def test_gaussian_bump_curvature(self, bump_field, unit_region):
        gs = sample_grid(bump_field, unit_region, 101)
        curv = grid_gaussian_curvature(gs)
        # At a bump center: fxx = fyy = -amp/sigma^2, fxy = 0, gradient 0,
        # so K = amp^2/sigma^4 > 0.
        bump = bump_field.bumps[0]
        ix = int(round(bump.cx))
        iy = int(round(bump.cy))
        expected = (bump.amplitude / bump.sigma**2) ** 2
        assert np.isclose(curv[iy, ix], expected, rtol=0.1)

    def test_analytic_cross_validation(self, bump_field, unit_region):
        """FD curvature matches the closed-form Monge-patch formula."""
        gs = sample_grid(bump_field, unit_region, 201)
        curv = grid_gaussian_curvature(gs)
        xs, ys = gs.xs, gs.ys
        xx, yy = np.meshgrid(xs, ys)
        gx, gy = bump_field.gradient(xx, yy)
        hxx, hxy, hyy = bump_field.hessian(xx, yy)
        expected = (hxx * hyy - hxy**2) / (1 + gx**2 + gy**2) ** 2
        interior = (slice(5, -5), slice(5, -5))
        assert np.allclose(curv[interior], expected[interior], atol=2e-4)

    def test_abs_gaussian(self, bump_field, unit_region):
        gs = sample_grid(bump_field, unit_region, 51)
        curv = grid_curvatures(gs)
        assert (curv.abs_gaussian >= 0).all()
        assert np.allclose(curv.abs_gaussian, np.abs(curv.gaussian))
