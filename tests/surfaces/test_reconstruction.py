"""Tests for end-to-end surface reconstruction."""

import numpy as np
import pytest

from repro.fields.analytic import PlaneField
from repro.fields.base import sample_grid
from repro.fields.grid import GridField
from repro.geometry.primitives import BoundingBox
from repro.surfaces.reconstruction import reconstruct_surface


class TestReconstruction:
    def test_plane_is_exact(self):
        plane = PlaneField(a=1.0, b=2.0, c=3.0)
        ref = sample_grid(plane, BoundingBox.square(10.0), 11)
        pts = np.array([[0, 0], [10, 0], [10, 10], [0, 10], [5, 5]], dtype=float)
        recon = reconstruct_surface(ref, pts, field=plane)
        assert recon.delta < 1e-6
        assert recon.rmse < 1e-9
        assert recon.n_samples == 5

    def test_more_samples_reduce_delta(self, bump_reference, bump_field):
        region = bump_reference.region
        rng = np.random.default_rng(1)

        def delta_for(k):
            pts = np.vstack(
                [
                    np.array([(0, 0), (100, 0), (100, 100), (0, 100)], dtype=float),
                    rng.uniform(0, 100, size=(k, 2)),
                ]
            )
            return reconstruct_surface(bump_reference, pts, field=bump_field).delta

        assert delta_for(200) < delta_for(10)

    def test_values_and_field_mutually_exclusive(self, bump_reference, bump_field):
        pts = np.array([[1.0, 1.0]])
        with pytest.raises(ValueError):
            reconstruct_surface(bump_reference, pts)
        with pytest.raises(ValueError):
            reconstruct_surface(
                bump_reference, pts, values=np.array([1.0]), field=bump_field
            )

    def test_length_mismatch(self, bump_reference):
        with pytest.raises(ValueError):
            reconstruct_surface(
                bump_reference, np.zeros((2, 2)), values=np.zeros(3)
            )

    def test_zero_samples(self, bump_reference):
        with pytest.raises(ValueError):
            reconstruct_surface(
                bump_reference, np.empty((0, 2)), values=np.empty(0)
            )

    def test_surface_on_reference_grid(self, bump_reference, bump_field):
        pts = np.array([[20.0, 20.0], [80.0, 30.0], [50.0, 70.0]])
        recon = reconstruct_surface(bump_reference, pts, field=bump_field)
        assert recon.surface.values.shape == bump_reference.values.shape
        assert np.array_equal(recon.surface.xs, bump_reference.xs)

    def test_values_path_matches_field_path(self, bump_reference, bump_field):
        pts = np.array([[25.0, 25.0], [75.0, 25.0], [50.0, 75.0], [10.0, 90.0]])
        via_field = reconstruct_surface(bump_reference, pts, field=bump_field)
        via_values = reconstruct_surface(
            bump_reference, pts, values=bump_field.sample(pts)
        )
        assert np.isclose(via_field.delta, via_values.delta)
