"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro.core.baselines import random_placement, uniform_grid_placement
from repro.core.fra import FRAConfig, solve_osd
from repro.core.problem import OSDProblem, OSTDProblem
from repro.fields.base import sample_grid
from repro.fields.greenorbs import GreenOrbsLightField
from repro.fields.grid import GridField
from repro.fields.trace_io import read_trace_csv, write_trace_csv
from repro.sim.engine import MobileSimulation
from repro.surfaces.reconstruction import reconstruct_surface


class TestStationaryPipeline:
    """Field -> reference -> FRA -> reconstruction -> delta, full loop."""

    def test_osd_full_loop(self):
        field = GreenOrbsLightField(side=60.0, seed=11)
        reference = sample_grid(field, field.region, 61, t=600.0)
        problem = OSDProblem(k=30, rc=10.0, reference=reference)
        result = solve_osd(problem)
        assert result.connected
        assert result.k == 30
        # Sanity bound: delta is far below the do-nothing surface error.
        flat = reconstruct_surface(
            reference,
            np.array([[30.0, 30.0]]),
            values=np.array([float(reference.values.mean())]),
        )
        assert result.delta < flat.delta

    def test_osd_scales_with_budget_and_beats_baselines(self):
        field = GreenOrbsLightField(side=60.0, seed=11)
        reference = sample_grid(field, field.region, 61, t=600.0)
        gf = GridField(reference)
        fra_delta = solve_osd(OSDProblem(k=36, rc=10.0, reference=reference)).delta
        rnd = random_placement(reference.region, 36, seed=0)
        rnd_delta = reconstruct_surface(reference, rnd, values=gf.sample(rnd)).delta
        assert fra_delta < rnd_delta


class TestMobilePipeline:
    """Field -> engine -> CMA rounds -> delta(t), full loop."""

    def test_ostd_full_loop(self):
        field = GreenOrbsLightField(side=60.0, seed=11, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=36, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=10.0,
        )
        sim = MobileSimulation(problem, resolution=61)
        result = sim.run()
        assert len(result.rounds) == 10
        assert result.always_connected
        # Adaptation must not be catastrophic: final delta within 25% of
        # the initial grid's.
        assert result.deltas[-1] < result.deltas[0] * 1.25
        # And the minimum over the run should improve on the start.
        assert result.deltas.min() <= result.deltas[0]


class TestTraceDrivenPipeline:
    """Generator -> CSV trace on disk -> replayed field -> simulation."""

    def test_trace_replay_matches_live_field(self, tmp_path):
        field = GreenOrbsLightField(side=40.0, seed=3, freeze_sun_at=600.0)
        times = [600.0 + t for t in range(0, 7)]
        trace = field.make_trace(times, resolution=41)
        path = tmp_path / "greenorbs.csv"
        write_trace_csv(trace, path)
        replayed = read_trace_csv(path).as_field()

        problem_live = OSTDProblem(
            k=16, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=5.0,
        )
        problem_replay = OSTDProblem(
            k=16, rc=10.0, rs=5.0, region=field.region, field=replayed,
            speed=1.0, t0=600.0, duration=5.0,
        )
        live = MobileSimulation(problem_live, resolution=41).run()
        replay = MobileSimulation(problem_replay, resolution=41).run()
        # The trace was sampled on the same grid the engine uses; replay
        # differs only through bilinear evaluation at off-grid node
        # positions, so the runs agree closely but not bit-for-bit.
        assert np.allclose(live.deltas, replay.deltas, rtol=0.02)
        assert np.allclose(live.final_positions, replay.final_positions, atol=1.0)


class TestCrossAlgorithmComparison:
    def test_paper_ordering_fra_cma_random(self):
        """The paper's overall ordering: FRA <= converged CMA < random."""
        field = GreenOrbsLightField(side=60.0, seed=11, freeze_sun_at=600.0)
        reference = sample_grid(field, field.region, 61, t=600.0)
        gf = GridField(reference)
        k = 36

        fra = solve_osd(OSDProblem(k=k, rc=10.0, reference=reference))

        problem = OSTDProblem(
            k=k, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=12.0,
        )
        cma = MobileSimulation(problem, resolution=61).run()
        cma_delta = float(np.median(cma.deltas[len(cma.deltas) // 2:]))

        rnd = random_placement(reference.region, k, seed=2)
        rnd_delta = reconstruct_surface(
            reference, rnd, values=gf.sample(rnd)
        ).delta

        assert fra.delta < cma_delta
        assert cma_delta < rnd_delta
