"""Tests for the result containers' cached series accessors."""

import numpy as np
import pytest

from repro.runtime import RoundRecord, SimulationResult
from repro.runtime.records import CentralizedResult, CentralizedRound


def make_record(i, delta=0.5):
    return RoundRecord(
        round_index=i,
        t=600.0 + i,
        positions=np.zeros((2, 2)),
        delta=delta,
        rmse=delta / 2,
        connected=True,
        n_components=1,
        n_alive=2,
        n_moved=1,
        n_lcm_moves=0,
        mean_force=0.1,
    )


class TestSeriesCache:
    def test_repeated_access_returns_same_array(self):
        result = SimulationResult(rounds=[make_record(0), make_record(1)])
        assert result.times is result.times
        assert result.deltas is result.deltas
        assert result.rmses is result.rmses

    def test_append_invalidates(self):
        result = SimulationResult(rounds=[make_record(0)])
        first = result.deltas
        result.rounds.append(make_record(1, delta=0.25))
        second = result.deltas
        assert first is not second
        assert second.tolist() == [0.5, 0.25]

    def test_cached_array_is_read_only(self):
        result = SimulationResult(rounds=[make_record(0)])
        with pytest.raises(ValueError):
            result.times[0] = 0.0
        # a copy is writable, as callers that mutate are told to take
        copied = result.times.copy()
        copied[0] = 0.0

    def test_values_match_rounds(self):
        result = SimulationResult(
            rounds=[make_record(i, delta=float(i)) for i in range(5)]
        )
        assert np.array_equal(result.times, 600.0 + np.arange(5.0))
        assert np.array_equal(result.deltas, np.arange(5.0))
        assert np.array_equal(result.rmses, np.arange(5.0) / 2)

    def test_centralized_cache(self):
        rounds = [
            CentralizedRound(
                round_index=i, t=600.0 + i, positions=np.zeros((2, 2)),
                delta=0.1 * i, connected=True, n_components=1,
                n_messages=3, information_age=0,
            )
            for i in range(3)
        ]
        result = CentralizedResult(rounds=rounds)
        assert result.deltas is result.deltas
        result.rounds.append(rounds[0])
        assert len(result.deltas) == 4
        assert result.total_messages == 12
