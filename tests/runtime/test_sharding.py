"""Spatial sharding: partition geometry, tile views, bit-identity.

The headline contract under test: a run executed as T tiles with
ghost-zone exchange (``tiles=T``) is ``np.array_equal`` to the
single-process engine — including under message loss, scheduled
failures, sensor noise and checkpoint/resume — because per-pair radio
decisions, per-read sensing and per-node planning are pure, subsets are
halo-complete, and every non-decomposable round falls back to the
barrier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cma import CMAParams
from repro.core.problem import OSTDProblem
from repro.fields.greenorbs import GreenOrbsLightField
from repro.geometry.primitives import BoundingBox
from repro.obs import Instrumentation, use_instrumentation
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.sharding import (
    ShardedScheduler,
    ShardedWorldState,
    ShardingConfig,
    TilePartition,
    TileRuntime,
    get_sharding_config,
    halo_width,
    resolve_tiles,
    use_sharding,
)
from repro.runtime.state import WorldState
from repro.sim.engine import MobileSimulation
from repro.sim.netmodel.failures import MessageLossModel, NodeFailureSchedule

REGION = BoundingBox(0.0, 0.0, 40.0, 20.0)


def make_sim(tiles=None, loss=False, failures=False, noise=False,
             geometry=False, k=25):
    field = GreenOrbsLightField(side=40.0, seed=3, freeze_sun_at=600.0)
    problem = OSTDProblem(
        field=field, region=field.region, k=k, rc=10.0, rs=5.0
    )
    kwargs = {}
    if loss:
        kwargs["message_loss"] = MessageLossModel(0.2, seed=3)
    if failures:
        kwargs["failure_schedule"] = NodeFailureSchedule({602.0: [1, 2]})
    if noise:
        kwargs.update(sensor_noise_std=0.05, sensor_noise_seed=11)
    return MobileSimulation(
        problem, resolution=41, tiles=tiles,
        incremental_geometry=geometry, **kwargs
    )


def assert_same_run(sim, base):
    __tracebackhide__ = True
    assert np.array_equal(sim.positions, base.positions)
    assert np.array_equal(sim.alive_mask, base.alive_mask)
    assert np.array_equal(
        [n.curvature for n in sim.nodes], [n.curvature for n in base.nodes]
    )


class TestHaloWidth:
    def test_max_of_radii(self):
        assert halo_width(CMAParams(rc=10.0, rs=5.0)) == 10.0
        assert halo_width(CMAParams(rc=4.0, rs=6.0)) == 6.0


class TestTilePartition:
    def test_bounds_cover_region_exactly(self):
        part = TilePartition(REGION, 4)
        assert part.n_tiles == 4
        tiles = [part.tile_bounds(t) for t in range(part.n_tiles)]
        assert min(b.xmin for b in tiles) == REGION.xmin
        assert max(b.xmax for b in tiles) == REGION.xmax
        assert min(b.ymin for b in tiles) == REGION.ymin
        assert max(b.ymax for b in tiles) == REGION.ymax
        assert sum(b.area for b in tiles) == pytest.approx(REGION.area)

    def test_wide_region_prefers_columns(self):
        part = TilePartition(REGION, 4)  # region is 2:1 wide
        assert (part.nx, part.ny) == (4, 1)

    def test_explicit_shape_tuple(self):
        part = TilePartition(REGION, (2, 2))
        assert (part.nx, part.ny) == (2, 2)

    def test_invalid_tile_count(self):
        with pytest.raises(ValueError):
            TilePartition(REGION, 0)

    def test_assignment_matches_bounds(self):
        part = TilePartition(REGION, (2, 2))
        rng = np.random.default_rng(5)
        pts = rng.uniform((0, 0), (40, 20), size=(200, 2))
        owner = part.assign(pts)
        for t in range(part.n_tiles):
            b = part.tile_bounds(t)
            mine = pts[owner == t]
            assert np.all(mine[:, 0] >= b.xmin)
            assert np.all(mine[:, 0] <= b.xmax)
            assert np.all(mine[:, 1] >= b.ymin)
            assert np.all(mine[:, 1] <= b.ymax)

    def test_every_position_owned_once(self):
        part = TilePartition(REGION, 4)
        pts = np.array([[0.0, 0.0], [40.0, 20.0], [10.0, 10.0], [39.9, 0.1]])
        owner = part.assign(pts)
        assert owner.shape == (4,)
        assert np.all((owner >= 0) & (owner < part.n_tiles))

    def test_out_of_region_clamped(self):
        part = TilePartition(REGION, 4)
        owner = part.assign(np.array([[-5.0, -5.0], [99.0, 99.0]]))
        assert owner[0] == 0
        assert owner[1] == part.n_tiles - 1

    def test_ghost_mask_closed_halo(self):
        part = TilePartition(REGION, (2, 1))  # split at x = 20
        halo = 3.0
        pts = np.array([
            [5.0, 10.0],    # deep in tile 0
            [23.0, 10.0],   # tile 1, exactly on tile 0's halo edge
            [23.1, 10.0],   # tile 1, just outside the halo
            [19.0, 10.0],   # tile 0 (owned, never a ghost of itself)
        ])
        mask = part.ghost_mask(pts, tile=0, halo=halo)
        assert mask.tolist() == [False, True, False, False]

    def test_ghost_mask_excludes_dead(self):
        part = TilePartition(REGION, (2, 1))
        pts = np.array([[21.0, 10.0], [22.0, 10.0]])
        alive = np.array([True, False])
        mask = part.ghost_mask(pts, tile=0, halo=5.0, alive=alive)
        assert mask.tolist() == [True, False]

    def test_boundary_distance(self):
        single = TilePartition(REGION, 1)
        assert np.all(np.isinf(single.boundary_distance([[1.0, 1.0]])))
        part = TilePartition(REGION, (2, 1))  # internal edge at x = 20
        d = part.boundary_distance([[18.0, 3.0], [20.0, 19.0], [33.0, 0.0]])
        assert d.tolist() == [2.0, 0.0, 13.0]


def make_world(k=12, seed=0):
    rng = np.random.default_rng(seed)
    return WorldState(
        round_index=3,
        t=610.0,
        positions=rng.uniform((0, 0), (40, 20), size=(k, 2)),
        alive=rng.random(k) > 0.2,
        curvature=rng.normal(size=k),
        distance_travelled=rng.random(k),
        died_at=np.full(k, np.nan),
        curvature_scale=1.5,
    )


class TestShardedWorldState:
    def test_split_owned_sets_partition_the_fleet(self):
        world = make_world()
        part = TilePartition(REGION, 4)
        views = ShardedWorldState.split(world, part, halo=5.0)
        owned = np.concatenate([v.owned_ids for v in views])
        assert sorted(owned.tolist()) == list(range(world.k))

    def test_ghosts_are_alive_neighbours_of_other_tiles(self):
        world = make_world()
        part = TilePartition(REGION, 4)
        for view in ShardedWorldState.split(world, part, halo=5.0):
            for gid in view.ghost_ids:
                assert world.alive[gid]
                assert gid not in view.owned_ids.tolist()

    def test_rows_ascend_by_global_id(self):
        world = make_world()
        views = ShardedWorldState.split(
            world, TilePartition(REGION, 4), halo=5.0
        )
        for view in views:
            assert np.all(np.diff(view.ids) > 0)
            np.testing.assert_array_equal(
                view.state.positions, world.positions[view.ids]
            )

    def test_local_row_lookup(self):
        world = make_world()
        view = ShardedWorldState.split(
            world, TilePartition(REGION, 2), halo=5.0
        )[0]
        for row, gid in enumerate(view.ids):
            assert view.local_row(int(gid)) == row
        with pytest.raises(KeyError):
            view.local_row(10_000)

    def test_merge_into_round_trip(self):
        world = make_world()
        part = TilePartition(REGION, 4)
        views = ShardedWorldState.split(world, part, halo=5.0)
        for view in views:
            view.state.curvature[view.owned] += 100.0
            # Ghost edits must never leak back.
            view.state.curvature[~view.owned] = -999.0
        merged = make_world()
        for view in views:
            view.merge_into(merged)
        np.testing.assert_array_equal(
            merged.curvature, make_world().curvature + 100.0
        )
        np.testing.assert_array_equal(merged.positions, world.positions)


class TestWorldStateTakeScatter:
    def test_take_is_independent(self):
        world = make_world()
        sub = world.take([2, 5, 7])
        sub.positions += 50.0
        sub.curvature[:] = 0.0
        np.testing.assert_array_equal(world.positions, make_world().positions)
        np.testing.assert_array_equal(world.curvature, make_world().curvature)

    def test_scatter_inverts_take(self):
        world = make_world()
        ids = np.array([1, 4, 9])
        sub = world.take(ids)
        sub.positions += 7.0
        world.scatter(ids, sub)
        expected = make_world().positions
        expected[ids] += 7.0
        np.testing.assert_array_equal(world.positions, expected)

    def test_scatter_length_mismatch(self):
        world = make_world()
        with pytest.raises(ValueError):
            world.scatter([1, 2, 3], world.take([1, 2]))


class TestShardingConfig:
    def test_validates_tiles(self):
        with pytest.raises(ValueError):
            ShardingConfig(tiles=0)
        with pytest.raises(ValueError):
            ShardingConfig(tiles=2, workers=0)

    def test_ambient_stack(self):
        assert get_sharding_config() is None
        cfg = ShardingConfig(tiles=2)
        with use_sharding(cfg):
            assert get_sharding_config() is cfg
        assert get_sharding_config() is None

    def test_resolve_tiles_precedence(self):
        assert resolve_tiles(None) is None
        assert resolve_tiles(3).tiles == 3
        ambient = ShardingConfig(tiles=2, workers=4)
        with use_sharding(ambient):
            assert resolve_tiles(None) is ambient
            # Explicit kwarg overrides the tile count, keeps the policy.
            resolved = resolve_tiles(8)
            assert resolved.tiles == 8
            assert resolved.workers == 4


class TestShardedRunIdentity:
    """--tiles runs are np.array_equal to the single-process engine."""

    ROUNDS = 6

    def run_pair(self, tiles, **kwargs):
        base = make_sim(None, **kwargs)
        sim = make_sim(tiles, **kwargs)
        for _ in range(self.ROUNDS):
            base.step()
            sim.step()
        assert_same_run(sim, base)
        sim.close()
        return sim, base

    @pytest.mark.parametrize("tiles", [1, 2, 4])
    def test_clean_run(self, tiles):
        self.run_pair(tiles)

    @pytest.mark.parametrize("tiles", [2, 4])
    def test_under_message_loss(self, tiles):
        self.run_pair(tiles, loss=True)

    @pytest.mark.parametrize("tiles", [2, 4])
    def test_under_scheduled_failures(self, tiles):
        sim, base = self.run_pair(tiles, failures=True)
        assert not sim.alive_mask.all()  # the schedule actually fired

    @pytest.mark.parametrize("tiles", [2, 4])
    def test_under_sensor_noise(self, tiles):
        self.run_pair(tiles, noise=True)

    def test_all_fault_models_together(self):
        self.run_pair(4, loss=True, failures=True, noise=True)

    def test_records_and_deltas_match(self):
        base = make_sim(None)
        sim = make_sim(4)
        r_base = base.run(self.ROUNDS)
        r_sim = sim.run(self.ROUNDS)
        assert np.array_equal(r_sim.deltas, r_base.deltas)
        assert np.array_equal(r_sim.rmses, r_base.rmses)
        sim.close()

    def test_checkpoint_resume_sharded(self, tmp_path):
        base = make_sim(None)
        r_base = base.run(8)
        sim = make_sim(4)
        sim.run(5, checkpoint=CheckpointConfig(directory=tmp_path, every=5))
        resumed = make_sim(4)
        r2 = resumed.run(
            8, checkpoint=CheckpointConfig(
                directory=tmp_path, every=5, resume=True
            )
        )
        assert np.array_equal(resumed.positions, base.positions)
        assert np.array_equal(r2.deltas[-3:], r_base.deltas[-3:])
        resumed.close()

    def test_process_pool_matches_in_process(self):
        base = make_sim(None)
        with use_sharding(ShardingConfig(tiles=4, workers=2)):
            sim = make_sim()
        assert sim.sharding.workers == 2
        for _ in range(4):
            base.step()
            sim.step()
        assert_same_run(sim, base)
        sim.close()

    def test_incremental_geometry_sharded(self):
        base = make_sim(None, geometry=False)
        sim = make_sim(4, geometry=True)
        r_base = base.run(self.ROUNDS)
        r_sim = sim.run(self.ROUNDS)
        assert np.array_equal(r_sim.deltas, r_base.deltas)
        assert_same_run(sim, base)
        sim.close()


class TestMigrationAndCounters:
    def test_nodes_migrate_between_tiles(self):
        """CMA contraction moves nodes across tile edges; ownership follows."""
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            sim = make_sim(4)
            part = sim.scheduler.partition
            before = part.assign(sim.positions)
            for _ in range(8):
                sim.step()
        after = part.assign(sim.positions)
        migrated = int((before != after).sum())
        assert migrated > 0
        assert obs.counter("shard.migrations").value >= migrated
        sim.close()

    def test_shard_counters_emitted(self):
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            sim = make_sim(4)
            for _ in range(3):
                sim.step()
        assert obs.counter("shard.rounds").value == 3
        # Round 0 is the calibration round: barrier fallback by design.
        assert obs.counter("shard.fallback_rounds").value == 1
        assert obs.counter("shard.ghost_nodes").value > 0
        assert obs.counter("shard.exchange_bytes").value == (
            24 * obs.counter("shard.ghost_nodes").value
        )
        sim.close()

    def test_fallback_every_round_under_loss(self):
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            sim = make_sim(2, loss=True)
            for _ in range(3):
                sim.step()
        assert obs.counter("shard.fallback_rounds").value == 3
        sim.close()


class TestTileObsShardLogs:
    def test_per_tile_logs_have_run_meta_and_rounds(self, tmp_path):
        import json

        shard_dir = tmp_path / "tiles"
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            with use_sharding(ShardingConfig(
                tiles=2,
                obs_shard_dir=str(shard_dir),
                run_meta={"scenario_id": "unit", "seed": 9,
                          "params": {"k": 25}},
            )):
                sim = make_sim()
            for _ in range(3):
                sim.step()
            sim.close()
        files = sorted(shard_dir.glob("tile-*.jsonl"))
        assert len(files) == 2
        for tile, path in enumerate(files):
            events = [json.loads(line) for line in path.read_text().splitlines()]
            head = events[0]
            assert head["event"] == "run_meta"
            assert head["scenario_id"] == "unit"
            assert head["seed"] == 9
            assert head["shard"] is True
            assert head["tile"] == tile
            rounds = [e for e in events if e["event"] == "shard.tile"]
            assert [e["round"] for e in rounds] == [0, 1, 2]
            assert all(e["tile"] == tile for e in rounds)
            assert sum(e["owned"] for e in rounds) > 0


class TestTileAwareGeometry:
    def test_boundary_crossing_forces_full_rebuild(self):
        from repro.runtime.geometry import IncrementalGeometry

        part = TilePartition(REGION, (2, 1))  # internal edge at x = 20
        rng = np.random.default_rng(2)
        pts = rng.uniform((0.5, 0.5), (39.5, 19.5), size=(30, 2))
        geom = IncrementalGeometry()
        geom.set_partition(part, halo=5.0)
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            first = geom.simplices_for(pts)
            assert first is not None
            # One mover, small step, same tile: incremental repair.
            moved = pts.copy()
            moved[0] += 0.05
            geom.simplices_for(moved)
            rebuilds_before = obs.counter("geom.full_rebuilds").value
            # One mover crossing the x=20 edge: boundary fallback.
            crossing = moved.copy()
            idx = int(np.argmin(np.abs(crossing[:, 0] - 20.0)))
            crossing[idx, 0] = 40.0 - crossing[idx, 0]
            simplices = geom.simplices_for(crossing)
            assert obs.counter("geom.full_rebuilds").value == rebuilds_before + 1
            assert obs.counter("geom.tile_crossings").value >= 1
        # The fallback rebuild matches a from-scratch triangulation.
        fresh = IncrementalGeometry().simplices_for(crossing)
        np.testing.assert_array_equal(simplices, fresh)

    def test_cross_boundary_simplices_match_scratch_build(self):
        """A maintained tile-aware mesh equals a fresh build after many
        rounds of movement straddling the tile edges."""
        from repro.runtime.geometry import IncrementalGeometry

        part = TilePartition(REGION, 4)
        rng = np.random.default_rng(7)
        pts = rng.uniform((0.5, 0.5), (39.5, 19.5), size=(40, 2))
        geom = IncrementalGeometry()
        geom.set_partition(part, halo=5.0)
        for _ in range(5):
            drift = rng.normal(scale=0.4, size=pts.shape)
            pts = np.clip(pts + drift, (0.5, 0.5), (39.5, 19.5))
            maintained = geom.simplices_for(pts)
            fresh = IncrementalGeometry().simplices_for(pts)
            np.testing.assert_array_equal(maintained, fresh)


class TestGuards:
    def test_tile_runtime_requires_calibration(self):
        sim = make_sim()
        world = sim.capture_state()
        world.curvature_scale = None
        part = TilePartition(sim.problem.region, 2)
        view = ShardedWorldState.split(world, part, halo=10.0)[0]
        runtime = TileRuntime(sim.problem, sim.params)
        from repro.fields.base import sample_grid
        from repro.runtime.sharding.worker import TileTask

        snap = sample_grid(
            sim.problem.field, sim.problem.region, 21, t=sim.t
        )
        task = TileTask(
            shard=view, snapshot_xs=snap.xs, snapshot_ys=snap.ys,
            snapshot_values=snap.values,
        )
        with pytest.raises(RuntimeError, match="calibration"):
            runtime.compute(task)

    def test_scheduler_rejects_unknown_tile_safe_run(self):
        class WeirdPhase:
            name = "weird"
            span_name = None
            tile_safe = True

            def run(self, ctx):
                pass

        sim = make_sim()
        with pytest.raises(ValueError, match="tile-safe run"):
            ShardedScheduler(
                sim,
                phases=[WeirdPhase()],
                config=ShardingConfig(tiles=2),
            )

    def test_close_is_idempotent(self):
        sim = make_sim(2)
        sim.close()
        sim.close()
