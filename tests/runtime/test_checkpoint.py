"""Checkpoint format round-trips and bit-identical resume.

The resume-equivalence tests are the runtime's acceptance criterion: a
run interrupted at round ``r`` and resumed from its checkpoint must
reproduce the remaining record series ``np.array_equal``-exactly against
an uninterrupted run — for both engines, with every stochastic model
(message loss, sensor noise, scheduled failures) switched on, so the RNG
stream capture is actually exercised.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.problem import OSTDProblem
from repro.fields.greenorbs import GreenOrbsLightField
from repro.runtime import (
    CheckpointConfig,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
    use_checkpointing,
)
from repro.runtime.checkpoint import CHECKPOINT_VERSION, RunPreempted
from repro.runtime.records import RoundRecord
from repro.sim.centralized import CentralizedSimulation
from repro.sim.engine import MobileSimulation
from repro.sim.failures import MessageLossModel, NodeFailureSchedule
from repro.sim.netmodel import (
    CrashSchedule,
    EnergyDepletionModel,
    GilbertElliottLink,
    NetworkModel,
    PerfectLink,
    RandomChurn,
    RetryPolicy,
    UniformDelayModel,
)


def make_problem(k=16, duration=10.0, side=40.0):
    field = GreenOrbsLightField(side=side, seed=3, freeze_sun_at=600.0)
    return OSTDProblem(
        k=k, rc=10.0, rs=5.0, region=field.region, field=field,
        speed=1.0, t0=600.0, duration=duration,
    )


def make_mobile(problem):
    """A mobile engine with every stochastic/failure model enabled."""
    return MobileSimulation(
        problem,
        resolution=41,
        message_loss=MessageLossModel(0.2, seed=3),
        failure_schedule=NodeFailureSchedule(at={602.0: [1, 2]}),
        sensor_noise_std=0.05,
        sensor_noise_seed=11,
    )


#: Fault-model matrix for resume-under-faults tests. Every entry is a
#: zero-argument factory so each of the three runs (baseline,
#: interrupted, resumed) gets fresh model instances with fresh RNG
#: streams — sharing instances would leak state across runs.
FAULT_VARIANTS = {
    "bursty-loss": lambda: dict(
        network=NetworkModel(
            GilbertElliottLink(p_fail=0.2, p_recover=0.3, loss_bad=0.9, seed=3)
        ),
    ),
    "delay-only": lambda: dict(
        network=NetworkModel(
            PerfectLink(),
            delay=UniformDelayModel(2, seed=5),
            max_age=3,
        ),
    ),
    "bursty+delay+retry": lambda: dict(
        network=NetworkModel(
            GilbertElliottLink(p_fail=0.2, p_recover=0.3, loss_bad=0.9, seed=3),
            delay=UniformDelayModel(2, seed=5),
            retry=RetryPolicy(max_retries=2),
            max_age=3,
        ),
    ),
    "churn+bursty+delay": lambda: dict(
        network=NetworkModel(
            GilbertElliottLink(p_fail=0.15, p_recover=0.4, loss_bad=0.8, seed=7),
            delay=UniformDelayModel(1, seed=2),
            max_age=2,
        ),
        crash_model=RandomChurn(0.1, recover_prob=0.4, seed=9),
    ),
    "crash-schedule+energy": lambda: dict(
        crash_model=CrashSchedule(at={602.0: {1: 2, 4: 3}}),
        energy_model=EnergyDepletionModel(
            capacity=4.0, move_cost=1.0, idle_cost=0.2
        ),
    ),
}


def make_faulty_mobile(problem, variant):
    """A mobile engine under one FAULT_VARIANTS configuration."""
    return MobileSimulation(
        problem,
        resolution=41,
        sensor_noise_std=0.05,
        sensor_noise_seed=11,
        **FAULT_VARIANTS[variant](),
    )


def make_centralized(problem):
    return CentralizedSimulation(
        problem, delay_rounds=2, replan_every=2, resolution=41,
    )


def assert_records_equal(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert type(g) is type(e)
        for f in dataclasses.fields(e):
            gv, ev = getattr(g, f.name), getattr(e, f.name)
            if isinstance(ev, np.ndarray):
                assert np.array_equal(gv, ev), f.name
            else:
                assert gv == ev, f.name


class TestSaveLoad:
    def test_state_round_trips_exactly(self, tmp_path):
        sim = make_mobile(make_problem(duration=4.0))
        sim.run(3)
        state = sim.capture_state()
        path = save_checkpoint(
            tmp_path / "ck.npz", state, engine="MobileSimulation"
        )
        loaded = load_checkpoint(path)
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.engine == "MobileSimulation"
        assert loaded.state.allclose(state)
        # RNG bit-generator states survive JSON (128-bit PCG64 ints).
        assert loaded.state.rng_states == state.rng_states

    def test_records_round_trip(self, tmp_path):
        sim = make_mobile(make_problem(duration=4.0))
        result = sim.run(3)
        path = save_checkpoint(
            tmp_path / "ck.npz", sim.capture_state(), result.rounds
        )
        loaded = load_checkpoint(path, record_type=RoundRecord)
        assert_records_equal(loaded.records, result.rounds)

    def test_no_pickle_in_file(self, tmp_path):
        sim = make_mobile(make_problem(duration=4.0))
        result = sim.run(2)
        path = save_checkpoint(
            tmp_path / "ck.npz", sim.capture_state(), result.rounds
        )
        # allow_pickle=False is load_checkpoint's default; prove the file
        # really has no object arrays by loading every key that way.
        with np.load(path, allow_pickle=False) as data:
            for key in data.files:
                data[key]

    def test_unknown_version_rejected(self, tmp_path):
        sim = make_mobile(make_problem(duration=4.0))
        sim.run(1)
        path = save_checkpoint(tmp_path / "ck.npz", sim.capture_state())
        # Rewrite the header with a bumped version.
        import json

        with np.load(path, allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files}
        meta = json.loads(bytes(payload["meta_json"]).decode())
        meta["version"] = CHECKPOINT_VERSION + 1
        payload["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        sim = make_mobile(make_problem(duration=4.0))
        sim.run(1)
        save_checkpoint(tmp_path / "ck.npz", sim.capture_state())
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]


class TestManager:
    def test_latest_wins(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        sim = make_mobile(make_problem(duration=6.0))
        for _ in range(3):
            sim.step()
            manager.save(sim.capture_state())
        assert len(manager.existing()) == 3
        latest = manager.load_latest()
        assert latest.state.round_index == 3

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "nope").load_latest() is None

    def test_claim_manager_is_deterministic(self, tmp_path):
        cfg_a = CheckpointConfig(tmp_path)
        cfg_b = CheckpointConfig(tmp_path)
        dirs_a = [cfg_a.claim_manager("mobile").directory for _ in range(2)]
        dirs_b = [cfg_b.claim_manager("mobile").directory for _ in range(2)]
        assert dirs_a == dirs_b
        assert dirs_a[0] != dirs_a[1]

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(tmp_path, every=0)


class TestResumeEquivalence:
    """Interrupt at round r, resume, match the uninterrupted run exactly."""

    def test_mobile_resume_bit_identical(self, tmp_path):
        total, interrupt = 10, 6
        baseline = make_mobile(make_problem()).run(total)

        interrupted = make_mobile(make_problem())
        interrupted.run(
            interrupt, checkpoint=CheckpointConfig(tmp_path, every=3)
        )
        resumed = make_mobile(make_problem()).run(
            total, checkpoint=CheckpointConfig(tmp_path, every=3, resume=True)
        )
        assert_records_equal(resumed.rounds, baseline.rounds)
        assert np.array_equal(resumed.deltas, baseline.deltas)
        assert np.array_equal(resumed.rmses, baseline.rmses)
        assert np.array_equal(
            resumed.final_positions, baseline.final_positions
        )

    def test_centralized_resume_bit_identical(self, tmp_path):
        total, interrupt = 10, 5
        baseline = make_centralized(make_problem()).run(total)

        interrupted = make_centralized(make_problem())
        interrupted.run(
            interrupt, checkpoint=CheckpointConfig(tmp_path, every=5)
        )
        resumed = make_centralized(make_problem()).run(
            total, checkpoint=CheckpointConfig(tmp_path, every=5, resume=True)
        )
        assert_records_equal(resumed.rounds, baseline.rounds)
        assert np.array_equal(resumed.deltas, baseline.deltas)

    def test_mobile_midway_state_matches_uninterrupted(self, tmp_path):
        """The checkpointed state itself equals the uninterrupted engine's."""
        interrupt = 6
        reference = make_mobile(make_problem())
        reference.run(interrupt)

        interrupted = make_mobile(make_problem())
        interrupted.run(
            interrupt, checkpoint=CheckpointConfig(tmp_path, every=6)
        )
        latest = CheckpointManager(
            tmp_path / "mobile-000"
        ).load_latest(record_type=RoundRecord)
        assert latest.state.allclose(reference.capture_state())

    def test_ambient_config_reaches_engine_runs(self, tmp_path):
        baseline = make_mobile(make_problem(duration=6.0)).run(6)
        with use_checkpointing(CheckpointConfig(tmp_path, every=3)):
            make_mobile(make_problem(duration=6.0)).run(4)
        with use_checkpointing(
            CheckpointConfig(tmp_path, every=3, resume=True)
        ):
            resumed = make_mobile(make_problem(duration=6.0)).run(6)
        assert_records_equal(resumed.rounds, baseline.rounds)

    def test_resume_truncates_to_requested_total(self, tmp_path):
        """Asking for fewer rounds than checkpointed returns a prefix."""
        baseline = make_mobile(make_problem(duration=6.0)).run(6)
        make_mobile(make_problem(duration=6.0)).run(
            6, checkpoint=CheckpointConfig(tmp_path, every=3)
        )
        resumed = make_mobile(make_problem(duration=6.0)).run(
            4, checkpoint=CheckpointConfig(tmp_path, every=3, resume=True)
        )
        assert_records_equal(resumed.rounds, baseline.rounds[:4])

    def test_resume_without_checkpoints_runs_from_scratch(self, tmp_path):
        baseline = make_mobile(make_problem(duration=4.0)).run(4)
        fresh = make_mobile(make_problem(duration=4.0)).run(
            4, checkpoint=CheckpointConfig(tmp_path, every=2, resume=True)
        )
        assert_records_equal(fresh.rounds, baseline.rounds)


class TestResumeUnderFaults:
    """Bit-identical resume across the netmodel fault matrix.

    Each variant switches on a different slice of the unreliable-network
    subsystem (bursty channels with per-link Markov state, in-flight
    delayed beacons, retry/backoff RNG churn, crash/recovery bookkeeping,
    battery accounting) — every one of which lives in checkpoint aux
    data and must survive the save→JSON→load round-trip exactly.
    """

    @pytest.mark.parametrize("variant", sorted(FAULT_VARIANTS))
    def test_resume_bit_identical(self, tmp_path, variant):
        total, interrupt = 10, 6
        baseline = make_faulty_mobile(make_problem(), variant).run(total)

        interrupted = make_faulty_mobile(make_problem(), variant)
        interrupted.run(
            interrupt, checkpoint=CheckpointConfig(tmp_path, every=3)
        )
        resumed = make_faulty_mobile(make_problem(), variant).run(
            total, checkpoint=CheckpointConfig(tmp_path, every=3, resume=True)
        )
        assert_records_equal(resumed.rounds, baseline.rounds)
        assert np.array_equal(resumed.deltas, baseline.deltas)
        assert np.array_equal(resumed.rmses, baseline.rmses)
        assert np.array_equal(
            resumed.final_positions, baseline.final_positions
        )

    @pytest.mark.parametrize("variant", sorted(FAULT_VARIANTS))
    def test_midway_state_matches_uninterrupted(self, tmp_path, variant):
        interrupt = 5
        reference = make_faulty_mobile(make_problem(), variant)
        reference.run(interrupt)

        interrupted = make_faulty_mobile(make_problem(), variant)
        interrupted.run(
            interrupt, checkpoint=CheckpointConfig(tmp_path, every=5)
        )
        latest = CheckpointManager(
            tmp_path / "mobile-000"
        ).load_latest(record_type=RoundRecord)
        assert latest.state.allclose(reference.capture_state())


class TestPreemption:
    """Cooperative preemption: the ``interrupt`` hook in drive_run.

    ``repro-serve`` points the hook at a cancel-marker file; here it is
    a plain closure, which pins the loop semantics without any server:
    fire mid-run → off-schedule checkpoint + RunPreempted; resume →
    bit-identical to the uninterrupted run; completion beats
    cancellation.
    """

    def test_interrupt_preempts_with_offschedule_checkpoint(self, tmp_path):
        calls = []

        def interrupt():
            calls.append(None)
            return len(calls) >= 4  # off the every=3 schedule

        with pytest.raises(RunPreempted) as err:
            make_mobile(make_problem()).run(
                10,
                checkpoint=CheckpointConfig(
                    tmp_path, every=3, interrupt=interrupt
                ),
            )
        assert err.value.rounds_completed == 4
        assert err.value.checkpoint_path is not None
        assert err.value.checkpoint_path.exists()
        # no completed work was lost: the save covers all 4 rounds
        latest = CheckpointManager(
            tmp_path / "mobile-000"
        ).load_latest(record_type=RoundRecord)
        assert len(latest.records) == 4

    def test_boundary_interrupt_reuses_the_scheduled_save(self, tmp_path):
        # fire exactly on an every=1 boundary: the scheduled checkpoint
        # doubles as the preemption save — one file, not two
        with pytest.raises(RunPreempted) as err:
            make_mobile(make_problem()).run(
                10,
                checkpoint=CheckpointConfig(
                    tmp_path, every=1, interrupt=lambda: True
                ),
            )
        assert err.value.rounds_completed == 1
        assert len(list((tmp_path / "mobile-000").glob("*.npz"))) == 1

    def test_resume_after_preemption_is_bit_identical(self, tmp_path):
        baseline = make_mobile(make_problem()).run(10)
        fired = []

        def interrupt():
            fired.append(None)
            return len(fired) >= 5

        with pytest.raises(RunPreempted):
            make_mobile(make_problem()).run(
                10,
                checkpoint=CheckpointConfig(
                    tmp_path, every=3, interrupt=interrupt
                ),
            )
        resumed = make_mobile(make_problem()).run(
            10, checkpoint=CheckpointConfig(tmp_path, every=3, resume=True)
        )
        assert_records_equal(resumed.rounds, baseline.rounds)
        assert np.array_equal(resumed.deltas, baseline.deltas)

    def test_completion_beats_cancellation(self, tmp_path):
        # the hook is never consulted once the final round completed:
        # an always-true interrupt cannot preempt a finishing run
        result = make_mobile(make_problem(duration=1.0)).run(
            1,
            checkpoint=CheckpointConfig(
                tmp_path, every=1, interrupt=lambda: True
            ),
        )
        assert len(result.rounds) == 1

    def test_interrupt_not_consulted_after_final_round(self, tmp_path):
        calls = []

        def interrupt():
            calls.append(None)
            return False

        make_mobile(make_problem(duration=5.0)).run(
            5,
            checkpoint=CheckpointConfig(tmp_path, every=5, interrupt=interrupt),
        )
        assert len(calls) == 4  # rounds 1..4, never after round 5

    def test_exception_carries_the_details(self):
        from pathlib import Path

        err = RunPreempted(3, Path("c.npz"))
        assert err.rounds_completed == 3
        assert err.checkpoint_path == Path("c.npz")
        assert "3 round(s)" in str(err)
        assert "c.npz" in str(err)
