"""Tests for the Scheduler's phase/middleware sequencing contract.

The exact hook order is load-bearing: the obs "step" span must enclose
failure injection and every phase, and ``on_round_end`` must fire after
the round context manager has closed (the pre-refactor engines emitted
their ``round`` event outside the span). These tests pin that contract
with logging fakes, independent of either real engine.
"""

from contextlib import contextmanager

from repro.runtime import Middleware, RoundContext, Scheduler


class LogPhase:
    span_name = None

    def __init__(self, name, log, record=None):
        self.name = name
        self._log = log
        self._record = record

    def run(self, ctx):
        self._log.append(f"phase:{self.name}")
        if self._record is not None:
            ctx.record = self._record


class LogMiddleware(Middleware):
    def __init__(self, tag, log):
        self.tag = tag
        self.log = log

    @contextmanager
    def around_round(self, ctx):
        self.log.append(f"{self.tag}:round-enter")
        try:
            yield
        finally:
            self.log.append(f"{self.tag}:round-exit")

    def on_round_start(self, ctx):
        self.log.append(f"{self.tag}:start")

    @contextmanager
    def around_phase(self, phase, ctx):
        self.log.append(f"{self.tag}:{phase.name}-enter")
        try:
            yield
        finally:
            self.log.append(f"{self.tag}:{phase.name}-exit")

    def on_round_end(self, ctx, record):
        self.log.append(f"{self.tag}:end:{record}")


class TestSequencing:
    def test_full_hook_order(self):
        log = []
        sched = Scheduler(
            phases=[LogPhase("a", log), LogPhase("b", log, record="REC")],
            middleware=[LogMiddleware("m1", log), LogMiddleware("m2", log)],
            advance=lambda ctx: log.append("advance"),
        )
        record = sched.run_round(RoundContext(engine=None))
        assert record == "REC"
        assert log == [
            # round spans open in middleware order, enclosing everything
            "m1:round-enter", "m2:round-enter",
            "m1:start", "m2:start",
            # per-phase spans nest inside the round spans
            "m1:a-enter", "m2:a-enter", "phase:a", "m2:a-exit", "m1:a-exit",
            "m1:b-enter", "m2:b-enter", "phase:b", "m2:b-exit", "m1:b-exit",
            # round spans close (LIFO) before any end hook fires
            "m2:round-exit", "m1:round-exit",
            "m1:end:REC", "m2:end:REC",
            # the clock advances dead last
            "advance",
        ]

    def test_no_middleware_no_advance(self):
        log = []
        sched = Scheduler(phases=[LogPhase("only", log, record=42)])
        assert sched.run_round(RoundContext(engine=None)) == 42
        assert log == ["phase:only"]

    def test_default_middleware_hooks_are_noops(self):
        log = []
        sched = Scheduler(
            phases=[LogPhase("p", log, record="r")],
            middleware=[Middleware()],
        )
        assert sched.run_round(RoundContext(engine=None)) == "r"

    def test_phase_exception_skips_end_hooks_but_closes_spans(self):
        log = []

        class Boom:
            name = "boom"
            span_name = None

            def run(self, ctx):
                raise RuntimeError("boom")

        sched = Scheduler(
            phases=[Boom()], middleware=[LogMiddleware("m", log)]
        )
        try:
            sched.run_round(RoundContext(engine=None))
        except RuntimeError:
            pass
        else:  # pragma: no cover - the raise is the point
            raise AssertionError("phase exception was swallowed")
        # Spans unwound; on_round_end never ran for the broken round.
        assert "m:round-exit" in log
        assert not any(entry.startswith("m:end") for entry in log)
