"""Bit-identity regression: incremental geometry vs from-scratch rebuilds.

``incremental_geometry=True`` must be purely a speed knob: full runs of
both engines — including netmodel faults, sensor noise, and a
checkpoint/resume cycle — must produce ``np.array_equal`` position and δ
series with the flag on and off.
"""

import numpy as np
import pytest

from repro.core.problem import OSTDProblem
from repro.fields.greenorbs import GreenOrbsLightField
from repro.runtime.geometry import IncrementalGeometry
from repro.sim.centralized import CentralizedSimulation
from repro.sim.engine import MobileSimulation
from repro.sim.netmodel.failures import MessageLossModel, NodeFailureSchedule

N_ROUNDS = 8


@pytest.fixture
def problem():
    field = GreenOrbsLightField(seed=7)
    return OSTDProblem(
        k=16, rc=10.0, rs=5.0, region=field.region, field=field,
        speed=1.0, t0=600.0, duration=float(N_ROUNDS),
    )


def mobile_run(problem, incremental):
    sim = MobileSimulation(
        problem,
        resolution=41,
        message_loss=MessageLossModel(0.2, seed=3),
        failure_schedule=NodeFailureSchedule({602.0: [1, 2]}),
        sensor_noise_std=0.05,
        sensor_noise_seed=11,
        incremental_geometry=incremental,
    )
    return sim.run(N_ROUNDS)


def series(result):
    deltas = np.array([r.delta for r in result.rounds])
    positions = np.array([r.positions for r in result.rounds])
    return deltas, positions


class TestEngineBitIdentity:
    def test_mobile_with_faults(self, problem):
        d_off, p_off = series(mobile_run(problem, False))
        d_on, p_on = series(mobile_run(problem, True))
        assert np.array_equal(d_off, d_on)
        assert np.array_equal(p_off, p_on)

    def test_centralized(self, problem):
        runs = []
        for flag in (False, True):
            sim = CentralizedSimulation(
                problem, resolution=41, incremental_geometry=flag
            )
            runs.append(series(sim.run(N_ROUNDS)))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert np.array_equal(runs[0][1], runs[1][1])

    def test_checkpoint_resume_cycle(self, problem):
        def build():
            return MobileSimulation(
                problem,
                resolution=41,
                message_loss=MessageLossModel(0.2, seed=3),
                incremental_geometry=True,
            )

        sim = build()
        for _ in range(3):
            sim.step()
        state = sim.capture_state()
        tail_a = [sim.step() for _ in range(3)]

        resumed = build()
        resumed.restore_state(state)
        assert resumed.geometry is not None
        assert resumed.geometry._tri is None  # cache dropped on restore
        tail_b = [resumed.step() for _ in range(3)]

        for ra, rb in zip(tail_a, tail_b):
            assert ra.delta == rb.delta
            assert np.array_equal(ra.positions, rb.positions)


class TestIncrementalGeometryUnit:
    def test_returns_canonical_simplices(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 50, size=(20, 2))
        geom = IncrementalGeometry()
        simp = geom.simplices_for(pts)
        assert simp is not None
        # canonical: each row min-first, rows lexsorted
        assert (simp.argmin(axis=1) == 0).all()
        assert np.array_equal(
            simp, simp[np.lexsort((simp[:, 2], simp[:, 1], simp[:, 0]))]
        )

    def test_incremental_matches_rebuild_over_walk(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 50, size=(25, 2))
        maintained = IncrementalGeometry()
        for _ in range(6):
            fresh = IncrementalGeometry()
            a = maintained.simplices_for(pts)
            b = fresh.simplices_for(pts)
            assert np.array_equal(a, b)
            ids = rng.choice(25, size=5, replace=False)
            pts[ids] = np.clip(
                pts[ids] + rng.uniform(-1, 1, size=(5, 2)), 0, 50
            )

    def test_duplicate_positions_fall_back(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        geom = IncrementalGeometry()
        assert geom.simplices_for(pts) is None
        assert geom._tri is None

    def test_near_duplicate_positions_fall_back(self):
        pts = np.array([[0.0, 0.0], [1e-12, 0.0], [1.0, 0.0], [0.0, 1.0]])
        geom = IncrementalGeometry()
        assert geom.simplices_for(pts) is None

    def test_too_few_points_fall_back(self):
        geom = IncrementalGeometry()
        assert geom.simplices_for(np.zeros((2, 2))) is None

    def test_population_change_rebuilds(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 50, size=(12, 2))
        geom = IncrementalGeometry()
        geom.simplices_for(pts)
        shrunk = pts[:-2]
        simp = geom.simplices_for(shrunk)
        fresh = IncrementalGeometry().simplices_for(shrunk)
        assert np.array_equal(simp, fresh)

    def test_reset_drops_cache(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 50, size=(10, 2))
        geom = IncrementalGeometry()
        geom.simplices_for(pts)
        assert geom._tri is not None
        geom.reset()
        assert geom._tri is None and geom._pts is None
