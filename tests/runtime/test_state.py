"""Tests for the serializable WorldState."""

import numpy as np
import pytest

from repro.runtime import WorldState


def make_state(k=4, **overrides):
    kwargs = dict(
        round_index=3,
        t=603.0,
        positions=np.arange(2 * k, dtype=float).reshape(k, 2),
        alive=[True] * k,
        curvature=np.linspace(0.0, 1.0, k),
        distance_travelled=np.zeros(k),
        died_at=np.full(k, np.nan),
        curvature_scale=0.5,
        rng_states={"sensor": {"state": 12345678901234567890}},
        arrays={"targets": np.ones((k, 2))},
        aux={"fired": [602.0]},
    )
    kwargs.update(overrides)
    return WorldState(**kwargs)


class TestCoercion:
    def test_dtypes_and_shapes_normalised(self):
        state = WorldState(
            round_index=np.int64(2),
            t=np.float64(601.0),
            positions=[[0, 0], [1, 1]],
            alive=[1, 0],
            curvature=[0, 1],
            distance_travelled=[0, 0],
            died_at=[np.nan, 600.5],
        )
        assert isinstance(state.round_index, int)
        assert isinstance(state.t, float)
        assert state.positions.dtype == float
        assert state.positions.shape == (2, 2)
        assert state.alive.dtype == bool
        assert state.k == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            make_state(alive=[True] * 3)


class TestCopy:
    def test_copy_is_independent(self):
        state = make_state()
        dup = state.copy()
        dup.positions[0, 0] = 99.0
        dup.arrays["targets"][0, 0] = 99.0
        dup.rng_states["sensor"]["state"] = 0
        dup.aux["fired"].append(700.0)
        assert state.positions[0, 0] == 0.0
        assert state.arrays["targets"][0, 0] == 1.0
        assert state.rng_states["sensor"]["state"] == 12345678901234567890
        assert state.aux["fired"] == [602.0]

    def test_copy_allclose_to_original(self):
        state = make_state()
        assert state.copy().allclose(state)


class TestAllclose:
    def test_exact_by_default(self):
        a = make_state()
        b = make_state()
        b.positions[0, 0] += 1e-12
        assert not a.allclose(b)
        assert a.allclose(b, atol=1e-9)

    def test_nan_died_at_compares_equal(self):
        assert make_state().allclose(make_state())

    def test_differs_on_scalars(self):
        assert not make_state().allclose(make_state(round_index=4))
        assert not make_state().allclose(make_state(curvature_scale=None))

    def test_differs_on_extras(self):
        assert not make_state().allclose(make_state(arrays={}))
        assert not make_state().allclose(make_state(aux={"fired": []}))

    @pytest.mark.parametrize("field,mutate", [
        ("positions", lambda s: s.positions.__setitem__((1, 0), -1.0)),
        ("alive", lambda s: s.alive.__setitem__(2, False)),
        ("curvature", lambda s: s.curvature.__setitem__(0, 9.0)),
        ("distance_travelled",
         lambda s: s.distance_travelled.__setitem__(3, 1.0)),
        ("died_at", lambda s: s.died_at.__setitem__(1, 602.0)),
        ("t", lambda s: setattr(s, "t", 604.0)),
        ("round_index", lambda s: setattr(s, "round_index", 9)),
        ("curvature_scale", lambda s: setattr(s, "curvature_scale", 2.0)),
        ("rng_states",
         lambda s: s.rng_states["sensor"].__setitem__("state", 0)),
        ("arrays",
         lambda s: s.arrays["targets"].__setitem__((0, 0), 5.0)),
        ("aux", lambda s: s.aux["fired"].append(700.0)),
    ])
    def test_disagrees_on_each_individual_field(self, field, mutate):
        """Every field participates in the comparison on its own."""
        a = make_state()
        b = make_state()
        assert a.allclose(b)
        mutate(b)
        assert not a.allclose(b), f"allclose blind to {field}"


class TestCopyFieldIndependence:
    """A copy shares no mutable storage with its original, field by field."""

    @pytest.mark.parametrize("mutate", [
        lambda s: s.positions.__setitem__((0, 0), 99.0),
        lambda s: s.alive.__setitem__(0, False),
        lambda s: s.curvature.__setitem__(0, 99.0),
        lambda s: s.distance_travelled.__setitem__(0, 99.0),
        lambda s: s.died_at.__setitem__(0, 99.0),
        lambda s: s.rng_states["sensor"].__setitem__("state", 0),
        lambda s: s.arrays["targets"].__setitem__((0, 0), 99.0),
        lambda s: s.aux["fired"].append(700.0),
    ])
    def test_mutating_copy_leaves_original(self, mutate):
        state = make_state()
        dup = state.copy()
        mutate(dup)
        assert state.allclose(make_state())
        assert not state.allclose(dup)
