"""Tests for the adjacency-list graph."""

import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n_vertices == 0
        assert g.n_edges == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_add_vertex(self):
        g = Graph(2)
        assert g.add_vertex() == 2
        assert g.n_vertices == 3


class TestEdges:
    def test_add_and_query(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.5)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.weight(0, 1) == 2.5
        assert g.n_edges == 1

    def test_reweight(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 9.0)
        assert g.weight(0, 1) == 9.0
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)
        with pytest.raises(IndexError):
            g.neighbors(9)

    def test_remove_edge(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_missing_weight_raises(self):
        g = Graph(2)
        with pytest.raises(KeyError):
            g.weight(0, 1)

    def test_neighbors_sorted(self):
        g = Graph(4)
        g.add_edge(0, 3)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.neighbors(0) == [1, 2, 3]
        assert g.degree(0) == 3

    def test_edges_iteration(self):
        g = Graph(3)
        g.add_edge(0, 2, 5.0)
        g.add_edge(0, 1, 3.0)
        assert list(g.edges()) == [(0, 1, 3.0), (0, 2, 5.0)]


class TestSubgraphCopy:
    def test_subgraph(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(2, 3, 3.0)
        sub, mapping = g.subgraph([1, 2, 3])
        assert mapping == [1, 2, 3]
        assert sub.n_vertices == 3
        assert sub.n_edges == 2
        assert sub.weight(0, 1) == 2.0  # old (1,2)

    def test_copy_independent(self):
        g = Graph(2)
        g.add_edge(0, 1)
        dup = g.copy()
        dup.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not dup.has_edge(0, 1)
