"""Tests for articulation points and layout fragility."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.robustness import (
    articulation_points,
    is_biconnected,
    layout_fragility,
)


def path_graph(n):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n):
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


class TestArticulationPoints:
    def test_path_interior_vertices(self):
        assert articulation_points(path_graph(5)) == {1, 2, 3}

    def test_cycle_has_none(self):
        assert articulation_points(cycle_graph(6)) == set()

    def test_star_center(self):
        g = Graph(5)
        for i in range(1, 5):
            g.add_edge(0, i)
        assert articulation_points(g) == {0}

    def test_two_triangles_sharing_vertex(self):
        g = Graph(5)
        for u, v in ((0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)):
            g.add_edge(u, v)
        assert articulation_points(g) == {2}

    def test_disconnected_components_handled(self):
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)  # path: 1 is articulation
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        g.add_edge(5, 3)  # triangle: none
        assert articulation_points(g) == {1}

    def test_empty_and_tiny(self):
        assert articulation_points(Graph(0)) == set()
        assert articulation_points(Graph(1)) == set()
        assert articulation_points(path_graph(2)) == set()

    def test_networkx_cross_validation(self, rng):
        import networkx as nx

        g = Graph(25)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(25))
        for _ in range(40):
            u, v = (int(x) for x in rng.integers(0, 25, size=2))
            if u != v:
                g.add_edge(u, v)
                nxg.add_edge(u, v)
        assert articulation_points(g) == set(nx.articulation_points(nxg))

    def test_deep_path_no_recursion_error(self):
        # 5000-vertex path would blow a recursive implementation.
        g = path_graph(5000)
        points = articulation_points(g)
        assert len(points) == 4998


class TestBiconnected:
    def test_cycle(self):
        assert is_biconnected(cycle_graph(5))

    def test_path_is_not(self):
        assert not is_biconnected(path_graph(4))

    def test_disconnected_is_not(self):
        g = Graph(4)
        g.add_edge(0, 1)
        assert not is_biconnected(g)

    def test_tiny_conventions(self):
        assert is_biconnected(Graph(1))
        assert is_biconnected(path_graph(2))
        assert not is_biconnected(Graph(2))


class TestLayoutFragility:
    def test_chain_layout_fragile(self):
        pts = np.array([[0.0, 0.0], [8.0, 0.0], [16.0, 0.0], [24.0, 0.0]])
        # Interior 2 of 4 nodes are articulation points.
        assert layout_fragility(pts, rc=10.0) == 0.5

    def test_dense_grid_robust(self):
        pts = np.array(
            [[float(x), float(y)] for x in range(4) for y in range(4)]
        ) * 5.0
        # Spacing 5, Rc 10: diagonal links everywhere -> biconnected.
        assert layout_fragility(pts, rc=10.0) == 0.0

    def test_tiny_layouts(self):
        assert layout_fragility(np.zeros((1, 2)), rc=5.0) == 0.0
        assert layout_fragility(np.array([[0, 0], [1, 1]]), rc=5.0) == 0.0

    def test_fra_relays_are_load_bearing(self, greenorbs_reference):
        """FRA layouts with relay chains have nonzero fragility."""
        from repro.core.fra import foresighted_refinement

        result = foresighted_refinement(greenorbs_reference, 30, 10.0)
        frag = layout_fragility(result.positions, 10.0)
        assert 0.0 <= frag <= 1.0
