"""Tests for unit-disk graph construction."""

import numpy as np
import pytest

from repro.graphs.geometric import (
    closest_pair_between,
    component_positions,
    graph_from_positions,
    unit_disk_graph,
)


class TestUnitDiskGraph:
    def test_edges_at_threshold(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [21.0, 0.0]])
        g = unit_disk_graph(pts, 10.0)
        assert g.has_edge(0, 1)  # exactly Rc counts
        assert not g.has_edge(1, 2)
        assert g.weight(0, 1) == 10.0

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            unit_disk_graph(np.zeros((2, 2)), 0.0)

    def test_empty_and_single(self):
        assert unit_disk_graph(np.empty((0, 2)), 5.0).n_vertices == 0
        assert unit_disk_graph(np.array([[1.0, 1.0]]), 5.0).n_edges == 0

    def test_grid_degree(self):
        pts = np.array(
            [[float(x), float(y)] for x in range(3) for y in range(3)]
        ) * 10.0
        g = unit_disk_graph(pts, 10.0)
        # Center of 3x3 grid has exactly 4 neighbours at spacing = Rc.
        center = 4
        assert g.degree(center) == 4

    def test_from_positions_wrapper(self):
        g = graph_from_positions([(0, 0), (1, 1)], 5.0)
        assert g.has_edge(0, 1)

    def test_weights_are_distances(self, rng):
        pts = rng.uniform(0, 20, size=(10, 2))
        g = unit_disk_graph(pts, 8.0)
        for u, v, w in g.edges():
            assert np.isclose(w, np.linalg.norm(pts[u] - pts[v]))
            assert w <= 8.0


class TestComponents:
    def test_two_clusters(self):
        pts = np.array([[0, 0], [1, 0], [50, 50], [51, 50]], dtype=float)
        groups = component_positions(pts, 5.0)
        assert len(groups) == 2
        assert sorted(len(g) for g in groups) == [2, 2]


class TestClosestPair:
    def test_known(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[5.0, 0.0], [3.0, 0.0]])
        i, j, d = closest_pair_between(a, b)
        assert (i, j) == (1, 1)
        assert d == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            closest_pair_between(np.empty((0, 2)), np.array([[0.0, 0.0]]))
