"""Tests for the disjoint-set forest."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.unionfind import UnionFind


class TestBasics:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert len(uf) == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.n_components == 3
        assert not uf.union(0, 1)  # already merged
        assert uf.n_components == 3

    def test_connected_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_out_of_range(self):
        uf = UnionFind(2)
        with pytest.raises(IndexError):
            uf.find(5)

    def test_components_map(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(sorted(v) for v in uf.components().values())
        assert groups == [[0, 1], [2, 3], [4]]


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
        )
    )
    def test_component_count_invariant(self, unions):
        """n_components always equals the count from a naive recomputation."""
        uf = UnionFind(20)
        for a, b in unions:
            uf.union(a, b)
        roots = {uf.find(i) for i in range(20)}
        assert uf.n_components == len(roots)

    @given(
        st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40
        )
    )
    def test_find_idempotent(self, unions):
        uf = UnionFind(15)
        for a, b in unions:
            uf.union(a, b)
        for i in range(15):
            assert uf.find(i) == uf.find(uf.find(i))
