"""Tests for relay placement (FRA's L(G,r) / P(G,i) primitives)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.geometric import unit_disk_graph
from repro.graphs.relay import (
    count_required_relays,
    plan_relays,
    relays_for_gap,
)
from repro.graphs.traversal import is_connected


class TestRelaysForGap:
    def test_no_relay_within_radius(self):
        assert relays_for_gap(5.0, 10.0) == 0
        assert relays_for_gap(10.0, 10.0) == 0

    def test_one_relay(self):
        assert relays_for_gap(15.0, 10.0) == 1
        assert relays_for_gap(20.0, 10.0) == 1  # exactly 2 hops

    def test_many_relays(self):
        assert relays_for_gap(35.0, 10.0) == 3

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            relays_for_gap(5.0, 0.0)


class TestCountRequired:
    def test_connected_needs_none(self):
        pts = np.array([[0, 0], [5, 0], [10, 0]], dtype=float)
        assert count_required_relays(pts, 10.0) == 0

    def test_two_islands(self):
        pts = np.array([[0, 0], [25, 0]], dtype=float)
        assert count_required_relays(pts, 10.0) == 2  # 25m gap -> 2 relays

    def test_three_islands_mst(self):
        pts = np.array([[0, 0], [15, 0], [30, 0]], dtype=float)
        # Two 15m gaps along the MST, one relay each.
        assert count_required_relays(pts, 10.0) == 2

    def test_trivial_inputs(self):
        assert count_required_relays(np.empty((0, 2)), 10.0) == 0
        assert count_required_relays(np.array([[1.0, 1.0]]), 10.0) == 0


class TestPlanRelays:
    def test_full_plan_connects(self):
        pts = np.array([[0, 0], [25, 0], [0, 40]], dtype=float)
        plan = plan_relays(pts, 10.0)
        assert plan.connected
        combined = np.vstack([pts, plan.positions])
        assert is_connected(unit_disk_graph(combined, 10.0))
        assert len(plan.positions) == plan.required

    def test_relay_spacing_within_radius(self):
        pts = np.array([[0, 0], [37, 0]], dtype=float)
        plan = plan_relays(pts, 10.0)
        chain = np.vstack([pts[:1], plan.positions, pts[1:]])
        order = np.argsort(chain[:, 0])
        hops = np.diff(chain[order, 0])
        assert (hops <= 10.0 + 1e-9).all()

    def test_budget_zero(self):
        pts = np.array([[0, 0], [25, 0]], dtype=float)
        plan = plan_relays(pts, 10.0, budget=0)
        assert len(plan.positions) == 0
        assert not plan.connected
        assert plan.components_after == 2

    def test_partial_budget_cheapest_first(self):
        # Component A-B gap needs 1 relay, A-C needs 3; budget 1 joins A-B.
        pts = np.array([[0, 0], [18, 0], [0, 38]], dtype=float)
        plan = plan_relays(pts, 10.0, budget=1)
        assert len(plan.positions) == 1
        assert plan.components_after == 2
        assert not plan.connected

    def test_already_connected(self):
        pts = np.array([[0, 0], [5, 0]], dtype=float)
        plan = plan_relays(pts, 10.0)
        assert plan.connected
        assert plan.required == 0
        assert len(plan.positions) == 0

    def test_empty_input(self):
        plan = plan_relays(np.empty((0, 2)), 10.0)
        assert plan.connected
        assert plan.components_before == 0


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=15), st.integers(0, 9999))
    def test_full_plan_always_connects(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, size=(n, 2))
        rc = 12.0
        plan = plan_relays(pts, rc)
        assert plan.connected
        combined = np.vstack([pts, plan.positions])
        assert is_connected(unit_disk_graph(combined, rc))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(0, 9999))
    def test_count_matches_plan(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 80, size=(n, 2))
        assert count_required_relays(pts, 10.0) == plan_relays(pts, 10.0).required
