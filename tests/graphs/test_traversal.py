"""Tests for BFS, connected components and hop paths."""

import pytest

from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_order,
    connected_components,
    is_connected,
    shortest_hop_path,
)


def path_graph(n):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestBFS:
    def test_order_from_source(self):
        g = path_graph(4)
        assert bfs_order(g, 0) == [0, 1, 2, 3]
        assert bfs_order(g, 2) == [2, 1, 3, 0]

    def test_unreachable_excluded(self):
        g = Graph(4)
        g.add_edge(0, 1)
        assert bfs_order(g, 0) == [0, 1]


class TestComponents:
    def test_single_component(self):
        assert connected_components(path_graph(5)) == [[0, 1, 2, 3, 4]]

    def test_multiple_components(self):
        g = Graph(5)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert connected_components(g) == [[0, 1], [2, 3], [4]]

    def test_empty_graph(self):
        assert connected_components(Graph(0)) == []

    def test_networkx_cross_validation(self, rng):
        import networkx as nx

        g = Graph(30)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(30))
        for _ in range(40):
            u, v = rng.integers(0, 30, size=2)
            if u != v:
                g.add_edge(int(u), int(v))
                nxg.add_edge(int(u), int(v))
        ours = sorted(tuple(c) for c in connected_components(g))
        theirs = sorted(tuple(sorted(c)) for c in nx.connected_components(nxg))
        assert ours == theirs


class TestIsConnected:
    def test_trivial_cases(self):
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))
        assert not is_connected(Graph(2))

    def test_path_connected(self):
        assert is_connected(path_graph(6))

    def test_disconnection_detected(self):
        g = path_graph(6)
        g.remove_edge(2, 3)
        assert not is_connected(g)


class TestShortestHopPath:
    def test_direct(self):
        g = path_graph(4)
        assert shortest_hop_path(g, 0, 3) == [0, 1, 2, 3]

    def test_self(self):
        g = path_graph(2)
        assert shortest_hop_path(g, 1, 1) == [1]

    def test_unreachable(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert shortest_hop_path(g, 0, 2) is None

    def test_prefers_fewer_hops(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 3)
        g.add_edge(0, 2)
        g.add_edge(2, 3)
        g.add_edge(0, 3)
        assert shortest_hop_path(g, 0, 3) == [0, 3]
