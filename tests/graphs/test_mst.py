"""Tests for Prim and Kruskal minimum spanning trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.mst import kruskal_mst, prim_mst, total_weight


def random_graph(rng, n, p=0.3):
    g = Graph(n)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j, float(rng.uniform(0.1, 10.0)))
    return g


class TestKnownCases:
    def test_triangle(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(0, 2, 3.0)
        for algo in (prim_mst, kruskal_mst):
            mst = algo(g)
            assert len(mst) == 2
            assert total_weight(mst) == 3.0
            assert (0, 2, 3.0) not in mst

    def test_empty_and_singleton(self):
        assert prim_mst(Graph(0)) == []
        assert prim_mst(Graph(1)) == []
        assert kruskal_mst(Graph(1)) == []

    def test_forest_on_disconnected(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 2.0)
        for algo in (prim_mst, kruskal_mst):
            mst = algo(g)
            assert len(mst) == 2  # one edge per component
            assert total_weight(mst) == 3.0


class TestCrossValidation:
    def test_prim_equals_kruskal_weight(self, rng):
        for trial in range(10):
            g = random_graph(rng, 15)
            assert np.isclose(
                total_weight(prim_mst(g)), total_weight(kruskal_mst(g))
            )

    def test_networkx_weight(self, rng):
        import networkx as nx

        g = random_graph(rng, 20)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(20))
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        nx_weight = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_edges(nxg, data=True)
        )
        assert np.isclose(total_weight(prim_mst(g)), nx_weight)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(0, 10_000))
    def test_mst_edge_count(self, n, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, n, p=0.5)
        from repro.graphs.traversal import connected_components

        n_components = len(connected_components(g))
        mst = prim_mst(g)
        assert len(mst) == n - n_components

    def test_mst_spans(self, rng):
        g = random_graph(rng, 12, p=0.6)
        mst_edges = prim_mst(g)
        spanning = Graph(12)
        for u, v, w in mst_edges:
            spanning.add_edge(u, v, w)
        from repro.graphs.traversal import connected_components

        assert len(connected_components(spanning)) == len(
            connected_components(g)
        )
