"""Tests for the curvature-weighted distribution solver and diagnostics."""

import numpy as np
import pytest

from repro.core.cwd import (
    _curvature_field,
    balance_residuals,
    solve_cwd,
    total_curvature,
)


class TestBalanceResiduals:
    def test_perfectly_balanced(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [-5.0, 0.0]])
        curv = np.array([1.0, 1.0, 1.0])
        res = balance_residuals(pts, curv, rc=10.0)
        # The centre node is a pivot; the outer nodes are not.
        assert np.isclose(res[0], 0.0)
        assert res[1] > 0 and res[2] > 0

    def test_no_neighbors_zero(self):
        pts = np.array([[0.0, 0.0], [100.0, 100.0]])
        res = balance_residuals(pts, np.ones(2), rc=10.0)
        assert np.allclose(res, 0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            balance_residuals(np.zeros((3, 2)), np.zeros(2), rc=10.0)


class TestCurvatureField:
    def test_normalisation(self, peaks_reference):
        field = _curvature_field(peaks_reference, threshold=1.0, cap=3.0)
        values = field.sample_data.values
        assert (values >= 0).all()
        assert values.max() <= 3.0

    def test_total_curvature_higher_at_features(self, peaks_reference):
        field = _curvature_field(peaks_reference)
        flat = np.array([[5.0, 5.0], [95.0, 95.0]])
        # Feature-rich middle region of peaks.
        featureful = np.array([[50.0, 50.0], [60.0, 45.0]])
        assert total_curvature(featureful, field) > total_curvature(flat, field)


class TestSolver:
    def test_converges_and_stays_in_region(self, peaks_reference):
        result = solve_cwd(
            peaks_reference, 9, rc=30.0, rs=15.0, max_iterations=80
        )
        assert result.positions.shape == (9, 2)
        region = peaks_reference.region
        for x, y in result.positions:
            assert region.contains((x, y), tol=1e-9)
        assert result.n_iterations <= 80

    def test_total_curvature_improves_over_uniform(self, peaks_reference):
        from repro.core.baselines import uniform_grid_placement

        uniform = uniform_grid_placement(peaks_reference.region, 16)
        result = solve_cwd(
            peaks_reference, 16, rc=30.0, rs=15.0,
            max_iterations=120, step=0.5,
            curvature_cap=0.5, curvature_threshold=0.5,
        )
        field = _curvature_field(peaks_reference, threshold=0.5, cap=0.5)
        assert total_curvature(result.positions, field) > total_curvature(
            uniform, field
        )

    def test_initial_layout_accepted(self, peaks_reference):
        init = np.full((4, 2), 50.0) + np.arange(8).reshape(4, 2)
        result = solve_cwd(
            peaks_reference, 4, rc=30.0, initial=init, max_iterations=5
        )
        assert result.positions.shape == (4, 2)

    def test_initial_layout_size_checked(self, peaks_reference):
        with pytest.raises(ValueError):
            solve_cwd(peaks_reference, 4, rc=30.0, initial=np.zeros((3, 2)))

    def test_invalid_k(self, peaks_reference):
        with pytest.raises(ValueError):
            solve_cwd(peaks_reference, 0, rc=30.0)

    def test_zero_weights_keep_uniform(self, bump_reference):
        """With the curvature weights zeroed out, spacing stays near-uniform
        (only repulsion and border forces act)."""
        result = solve_cwd(
            bump_reference, 9, rc=30.0, rs=5.0,
            max_iterations=40, curvature_cap=0.0, curvature_threshold=99.0,
        )
        from repro.core.baselines import uniform_grid_placement

        uniform = uniform_grid_placement(bump_reference.region, 9)
        drift = np.linalg.norm(result.positions - uniform, axis=1).mean()
        assert drift < 20.0
