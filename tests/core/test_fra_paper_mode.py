"""Tests pinning the documented FRA mode differences (DESIGN.md §6.4).

The library's default FRA includes two sharpenings over the paper's
pseudocode (look-ahead veto + cost-aware selection). These tests pin the
*measured claims* DESIGN.md and EXPERIMENTS.md make about the
paper-literal mode, so the documentation cannot silently rot.
"""

import numpy as np
import pytest

from repro.core.fra import FRAConfig, foresighted_refinement, solve_osd
from repro.core.problem import OSDProblem


RC = 10.0


class TestCostAwareToggle:
    def test_literal_mode_is_relay_heavy_at_small_k(self, greenorbs_reference):
        """DESIGN §6.4: without cost-aware picks, relays eat the budget."""
        k = 20
        literal = foresighted_refinement(
            greenorbs_reference, k, RC,
            FRAConfig(cost_aware_selection=False),
        )
        sharpened = foresighted_refinement(greenorbs_reference, k, RC)
        assert literal.n_relays > sharpened.n_relays
        assert literal.connected and sharpened.connected

    def test_sharpened_mode_better_delta_at_small_k(self, greenorbs_reference):
        k = 20
        literal = solve_osd(
            OSDProblem(k=k, rc=RC, reference=greenorbs_reference),
            FRAConfig(cost_aware_selection=False),
        )
        sharpened = solve_osd(
            OSDProblem(k=k, rc=RC, reference=greenorbs_reference)
        )
        assert sharpened.delta < literal.delta

    def test_both_modes_satisfy_budget_and_connectivity(
        self, greenorbs_reference
    ):
        for flag in (True, False):
            result = foresighted_refinement(
                greenorbs_reference, 25, RC,
                FRAConfig(cost_aware_selection=flag),
            )
            assert result.k == 25
            assert result.connected

    def test_modes_agree_at_large_k(self, greenorbs_reference):
        """With abundant budget the sharpenings matter much less."""
        k = 80
        literal = solve_osd(
            OSDProblem(k=k, rc=RC, reference=greenorbs_reference),
            FRAConfig(cost_aware_selection=False),
        )
        sharpened = solve_osd(
            OSDProblem(k=k, rc=RC, reference=greenorbs_reference)
        )
        assert sharpened.delta < 1.5 * literal.delta
        assert literal.delta < 3.0 * sharpened.delta
