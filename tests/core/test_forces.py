"""Tests for the virtual-force model (Eqns. 14-18)."""

import numpy as np
import pytest

from repro.core.forces import (
    VirtualForceParams,
    attraction_to_neighbors,
    attraction_to_peak,
    border_attraction,
    repulsion_from_neighbors,
    resultant_force,
)
from repro.geometry.primitives import BoundingBox

PARAMS = VirtualForceParams(rc=10.0, rs=5.0, beta=2.0)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualForceParams(rc=0.0, rs=5.0)
        with pytest.raises(ValueError):
            VirtualForceParams(rc=10.0, rs=-1.0)
        with pytest.raises(ValueError):
            VirtualForceParams(rc=10.0, rs=5.0, beta=-0.1)


class TestF1:
    def test_eqn_14(self):
        f1 = attraction_to_peak(np.array([0.0, 0.0]), np.array([3.0, 4.0]), 2.0)
        assert np.allclose(f1, [6.0, 8.0])

    def test_no_peak_zero_force(self):
        assert np.allclose(attraction_to_peak(np.zeros(2), None, 5.0), 0.0)

    def test_vanishes_at_peak(self):
        f1 = attraction_to_peak(np.array([3.0, 4.0]), np.array([3.0, 4.0]), 9.0)
        assert np.allclose(f1, 0.0)


class TestF2:
    def test_eqn_15_sum(self):
        pos = np.array([0.0, 0.0])
        nbrs = np.array([[2.0, 0.0], [-1.0, 0.0]])
        curv = np.array([1.0, 2.0])
        f2 = attraction_to_neighbors(pos, nbrs, curv)
        assert np.allclose(f2, [0.0, 0.0])  # 2*1 - 1*2 = 0: balanced pivot

    def test_unbalanced(self):
        pos = np.array([0.0, 0.0])
        nbrs = np.array([[2.0, 0.0], [-1.0, 0.0]])
        curv = np.array([3.0, 1.0])
        f2 = attraction_to_neighbors(pos, nbrs, curv)
        assert np.allclose(f2, [5.0, 0.0])

    def test_no_neighbors(self):
        assert np.allclose(
            attraction_to_neighbors(np.zeros(2), np.empty((0, 2)), np.empty(0)),
            0.0,
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            attraction_to_neighbors(np.zeros(2), np.zeros((2, 2)), np.zeros(3))

    def test_eqn9_equilibrium_is_zero_force(self):
        """At the CWD pivot (Eqn. 9) the F2 force vanishes."""
        nbrs = np.array([[1.0, 0.0], [-0.5, 0.5], [-0.5, -0.5]])
        curv = np.array([1.0, 1.0, 1.0])
        f2 = attraction_to_neighbors(np.zeros(2), nbrs, curv)
        assert np.allclose(f2, 0.0, atol=1e-12)


class TestRepulsion:
    def test_eqn_17_magnitude(self):
        pos = np.array([0.0, 0.0])
        nbrs = np.array([[4.0, 0.0]])
        fr = repulsion_from_neighbors(pos, nbrs, rc=10.0)
        assert np.allclose(fr, [-6.0, 0.0])  # (10-4) away from neighbour

    def test_out_of_range_ignored(self):
        fr = repulsion_from_neighbors(
            np.zeros(2), np.array([[11.0, 0.0]]), rc=10.0
        )
        assert np.allclose(fr, 0.0)

    def test_at_exact_rc_zero(self):
        fr = repulsion_from_neighbors(
            np.zeros(2), np.array([[10.0, 0.0]]), rc=10.0
        )
        assert np.allclose(fr, 0.0)

    def test_coincident_deterministic_push(self):
        fr = repulsion_from_neighbors(np.zeros(2), np.zeros((1, 2)), rc=10.0)
        assert np.allclose(fr, [10.0, 0.0])

    def test_symmetric_neighbors_cancel(self):
        nbrs = np.array([[3.0, 0.0], [-3.0, 0.0], [0.0, 3.0], [0.0, -3.0]])
        fr = repulsion_from_neighbors(np.zeros(2), nbrs, rc=10.0)
        assert np.allclose(fr, 0.0)


class TestBorder:
    REGION = BoundingBox.square(100.0)

    def test_frontier_node_pulled_to_wall(self):
        pos = np.array([20.0, 50.0])
        # No neighbour nearer the x=0 wall.
        nbrs = np.array([[30.0, 50.0]])
        fb = border_attraction(pos, nbrs, self.REGION, rc=10.0)
        assert fb[0] < 0  # pulled toward x = 0
        assert fb[1] == 0.0

    def test_covered_side_no_pull(self):
        pos = np.array([20.0, 50.0])
        nbrs = np.array([[12.0, 50.0], [28.0, 50.0], [20.0, 42.0], [20.0, 58.0]])
        fb = border_attraction(pos, nbrs, self.REGION, rc=10.0)
        assert np.allclose(fb, 0.0)

    def test_close_enough_no_pull(self):
        pos = np.array([4.0, 50.0])  # within Rc/2 of the wall
        fb = border_attraction(pos, np.empty((0, 2)), self.REGION, rc=10.0)
        assert fb[0] == 0.0

    def test_deep_interior_no_pull(self):
        pos = np.array([50.0, 50.0])  # farther than 2.5 Rc from every wall
        fb = border_attraction(pos, np.empty((0, 2)), self.REGION, rc=10.0)
        assert np.allclose(fb, 0.0)

    def test_pull_capped_at_rc(self):
        pos = np.array([24.0, 50.0])
        fb = border_attraction(pos, np.empty((0, 2)), self.REGION, rc=10.0)
        assert abs(fb[0]) <= 10.0


class TestResultant:
    def test_eqn_18_combination(self):
        pos = np.zeros(2)
        peak = np.array([1.0, 0.0])
        nbrs = np.array([[4.0, 0.0]])
        curv = np.array([0.0])
        bd = resultant_force(pos, peak, 1.0, nbrs, curv, PARAMS)
        expected = bd.f1 + bd.f2 + PARAMS.beta * bd.fr
        assert np.allclose(bd.fs, expected)
        assert bd.magnitude == np.linalg.norm(bd.fs)

    def test_region_enables_border_force(self):
        pos = np.array([20.0, 50.0])
        bd_without = resultant_force(
            pos, None, 0.0, np.empty((0, 2)), np.empty(0), PARAMS
        )
        bd_with = resultant_force(
            pos, None, 0.0, np.empty((0, 2)), np.empty(0), PARAMS,
            region=BoundingBox.square(100.0),
        )
        assert np.allclose(bd_without.fb, 0.0)
        assert not np.allclose(bd_with.fb, 0.0)
