"""Tests for placement baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    greedy_refinement_placement,
    perturbed_grid_placement,
    random_placement,
    uniform_grid_placement,
)
from repro.geometry.primitives import BoundingBox

REGION = BoundingBox.square(100.0)


class TestRandom:
    def test_count_and_bounds(self):
        pts = random_placement(REGION, 50, seed=0)
        assert pts.shape == (50, 2)
        assert (pts >= 0).all() and (pts <= 100).all()

    def test_seeded(self):
        assert np.allclose(
            random_placement(REGION, 10, seed=4), random_placement(REGION, 10, seed=4)
        )
        assert not np.allclose(
            random_placement(REGION, 10, seed=4), random_placement(REGION, 10, seed=5)
        )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            random_placement(REGION, 0)


class TestUniformGrid:
    def test_perfect_square(self):
        pts = uniform_grid_placement(REGION, 16)
        assert pts.shape == (16, 2)
        xs = np.unique(pts[:, 0])
        assert len(xs) == 4
        assert np.isclose(xs[0], 12.5)
        assert np.isclose(np.diff(xs), 25.0).all()

    def test_paper_100_grid(self):
        pts = uniform_grid_placement(REGION, 100)
        assert pts.shape == (100, 2)
        xs = np.unique(pts[:, 0])
        assert len(xs) == 10
        assert np.isclose(xs[0], 5.0)
        assert np.isclose(np.diff(xs), 10.0).all()

    def test_non_square_k(self):
        pts = uniform_grid_placement(REGION, 7)
        assert pts.shape == (7, 2)
        assert len({tuple(p) for p in pts}) == 7

    def test_k_one_center(self):
        pts = uniform_grid_placement(REGION, 1)
        assert np.allclose(pts, [[50.0, 50.0]])

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_grid_placement(REGION, 0)


class TestPerturbedGrid:
    def test_jitter_bounded(self):
        base = uniform_grid_placement(REGION, 25)
        pts = perturbed_grid_placement(REGION, 25, jitter=2.0, seed=1)
        assert (np.abs(pts - base) <= 2.0 + 1e-9).all()
        assert (pts >= 0).all() and (pts <= 100).all()

    def test_zero_jitter_is_grid(self):
        assert np.allclose(
            perturbed_grid_placement(REGION, 9, jitter=0.0),
            uniform_grid_placement(REGION, 9),
        )

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            perturbed_grid_placement(REGION, 9, jitter=-1.0)


class TestGreedyRefinement:
    def test_ignores_connectivity(self, greenorbs_reference):
        pts = greedy_refinement_placement(greenorbs_reference, 10)
        assert pts.shape == (10, 2)
        # With no connectivity constraint, picks chase features; they are
        # generally NOT a connected Rc=10 unit-disk graph.
        from repro.graphs.geometric import unit_disk_graph
        from repro.graphs.traversal import connected_components

        comps = connected_components(unit_disk_graph(pts, 10.0))
        assert len(comps) >= 1  # sanity; usually > 1

    def test_same_ballpark_as_fra(self, greenorbs_reference):
        """Unconstrained greedy lands near FRA.

        It is not strictly better: FRA's cost-aware growth avoids the
        interpolation overshoot that far-flung greedy peak picks produce,
        so either can win by a modest margin depending on k.
        """
        from repro.core.fra import solve_osd
        from repro.core.problem import OSDProblem
        from repro.fields.grid import GridField
        from repro.surfaces.reconstruction import reconstruct_surface

        k = 30
        greedy = greedy_refinement_placement(greenorbs_reference, k)
        corners = np.asarray(
            [(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)]
        )
        gf = GridField(greenorbs_reference)
        pts = np.vstack([greedy, corners])
        greedy_delta = reconstruct_surface(
            greenorbs_reference, pts, values=gf.sample(pts)
        ).delta
        fra_delta = solve_osd(
            OSDProblem(k=k, rc=10.0, reference=greenorbs_reference)
        ).delta
        assert 0.5 < greedy_delta / fra_delta < 1.5
