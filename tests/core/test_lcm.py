"""Tests for the Local Connectivity Mechanism."""

import numpy as np
import pytest

from repro.core.lcm import lcm_adjustment

RC = 10.0


class TestDirectLink:
    def test_stays_when_in_range(self):
        d = lcm_adjustment(np.array([5.0, 0.0]), np.array([0.0, 0.0]), [], RC)
        assert not d.must_move
        assert d.target is None

    def test_boundary_exactly_rc(self):
        d = lcm_adjustment(np.array([10.0, 0.0]), np.array([0.0, 0.0]), [], RC)
        assert not d.must_move


class TestBridging:
    def test_bridge_keeps_node_in_place(self):
        own = np.array([18.0, 0.0])
        dest = np.array([0.0, 0.0])
        bridge = np.array([9.0, 0.0])
        d = lcm_adjustment(own, dest, [bridge], RC)
        assert not d.must_move
        assert d.relayed_by == 0

    def test_bridge_must_reach_both(self):
        own = np.array([18.0, 0.0])
        dest = np.array([0.0, 0.0])
        too_far_from_dest = np.array([15.0, 0.0])
        d = lcm_adjustment(own, dest, [too_far_from_dest], RC)
        assert d.must_move

    def test_cannot_bridge_through_self(self):
        own = np.array([18.0, 0.0])
        dest = np.array([0.0, 0.0])
        d = lcm_adjustment(
            own, dest, [own.copy()], RC, own_index_in_table=0
        )
        assert d.must_move


class TestFollowing:
    def test_target_on_rc_circle(self):
        own = np.array([25.0, 0.0])
        dest = np.array([0.0, 0.0])
        d = lcm_adjustment(own, dest, [], RC)
        assert d.must_move
        assert np.isclose(np.linalg.norm(d.target - dest), RC)

    def test_target_along_line_of_sight(self):
        own = np.array([0.0, 30.0])
        dest = np.array([0.0, 0.0])
        d = lcm_adjustment(own, dest, [], RC)
        assert np.allclose(d.target, [0.0, 10.0])

    def test_degenerate_on_destination(self):
        own = np.array([0.0, 0.0])
        dest = np.array([0.0, 0.0])
        # own == dest but distance 0 <= Rc, so no move needed.
        d = lcm_adjustment(own, dest, [], RC)
        assert not d.must_move

    def test_minimal_displacement(self):
        own = np.array([25.0, 0.0])
        dest = np.array([0.0, 0.0])
        d = lcm_adjustment(own, dest, [], RC)
        moved = np.linalg.norm(d.target - own)
        assert np.isclose(moved, 15.0)  # 25 - Rc


class TestValidation:
    def test_bad_rc(self):
        with pytest.raises(ValueError):
            lcm_adjustment(np.zeros(2), np.zeros(2), [], 0.0)


class TestPaperScenario:
    """The Fig. 4 walk-through, end to end."""

    def test_fig4(self):
        from repro.experiments.fig4_lcm_scenario import build_scenario

        n1, dest, nodes = build_scenario()
        table = [nodes["n3"], nodes["n4"], nodes["n5"]]
        # n3: direct.
        d3 = lcm_adjustment(nodes["n3"], dest, table, RC, own_index_in_table=0)
        assert not d3.must_move and d3.relayed_by is None
        # n4: bridged by n3 (index 0).
        d4 = lcm_adjustment(nodes["n4"], dest, table, RC, own_index_in_table=1)
        assert not d4.must_move and d4.relayed_by == 0
        # n5: must follow, ending exactly Rc from the destination.
        d5 = lcm_adjustment(nodes["n5"], dest, table, RC, own_index_in_table=2)
        assert d5.must_move
        assert np.isclose(np.linalg.norm(d5.target - dest), RC)
        # n2 becomes a new neighbour after the move.
        assert np.linalg.norm(nodes["n2"] - dest) <= RC
