"""Tests for OSD/OSTD problem statements and placement results."""

import numpy as np
import pytest

from repro.core.problem import OSDProblem, OSTDProblem, PlacementResult
from repro.fields.dynamic import StaticAsDynamic
from repro.fields.analytic import PlaneField
from repro.geometry.primitives import BoundingBox


class TestOSDProblem:
    def test_validation(self, bump_reference):
        with pytest.raises(ValueError):
            OSDProblem(k=0, rc=10.0, reference=bump_reference)
        with pytest.raises(ValueError):
            OSDProblem(k=5, rc=0.0, reference=bump_reference)

    def test_region_from_reference(self, bump_reference):
        problem = OSDProblem(k=5, rc=10.0, reference=bump_reference)
        assert problem.region == bump_reference.region


class TestOSTDProblem:
    def make(self, **kwargs):
        defaults = dict(
            k=10,
            rc=10.0,
            rs=5.0,
            region=BoundingBox.square(100.0),
            field=StaticAsDynamic(PlaneField()),
        )
        defaults.update(kwargs)
        return OSTDProblem(**defaults)

    def test_defaults(self):
        problem = self.make()
        assert problem.speed == 1.0
        assert problem.t0 == 600.0
        assert problem.n_rounds == 45

    def test_n_rounds(self):
        assert self.make(duration=10.0, dt=2.0).n_rounds == 5

    def test_validation(self):
        for bad in (
            dict(k=0),
            dict(rc=0.0),
            dict(rs=-1.0),
            dict(speed=0.0),
            dict(duration=-1.0),
            dict(dt=0.0),
        ):
            with pytest.raises(ValueError):
                self.make(**bad)


class TestPlacementResult:
    def test_connectivity_property(self):
        connected = PlacementResult(
            positions=np.array([[0, 0], [5, 0]]), rc=10.0
        )
        assert connected.connected
        split = PlacementResult(
            positions=np.array([[0, 0], [50, 0]]), rc=10.0
        )
        assert not split.connected

    def test_delta_requires_evaluation(self):
        result = PlacementResult(positions=np.zeros((2, 2)), rc=10.0)
        with pytest.raises(ValueError):
            _ = result.delta

    def test_positions_coerced(self):
        result = PlacementResult(positions=[(1, 2), (3, 4)], rc=5.0)
        assert result.positions.shape == (2, 2)
        assert result.k == 2
