"""Tests for the exhaustive OSD solver and FRA's approximation quality."""

import numpy as np
import pytest

from repro.core.exact import ExactOSDResult, candidate_grid, exhaustive_osd
from repro.fields.analytic import GaussianBump, GaussianMixtureField
from repro.fields.base import sample_grid
from repro.geometry.primitives import BoundingBox
from repro.graphs.geometric import unit_disk_graph
from repro.graphs.traversal import is_connected


@pytest.fixture
def tiny_reference():
    """A single-bump field on a 20x20 region, coarse grid."""
    field = GaussianMixtureField(
        [GaussianBump(cx=7.0, cy=13.0, sigma=4.0, amplitude=5.0)],
        baseline=1.0,
    )
    return sample_grid(field, BoundingBox.square(20.0), 11)


class TestCandidateGrid:
    def test_stride(self, tiny_reference):
        cand = candidate_grid(tiny_reference, stride=2)
        assert cand.shape == (36, 2)  # every other point of an 11x11 grid
        assert candidate_grid(tiny_reference, stride=5).shape == (9, 2)

    def test_bad_stride(self, tiny_reference):
        with pytest.raises(ValueError):
            candidate_grid(tiny_reference, stride=0)


class TestExhaustive:
    def test_optimum_is_connected(self, tiny_reference):
        result = exhaustive_osd(tiny_reference, k=3, rc=12.0, stride=5)
        assert isinstance(result, ExactOSDResult)
        assert is_connected(unit_disk_graph(result.positions, 12.0))
        assert result.n_connected <= result.n_evaluated

    def test_optimum_beats_or_matches_every_subset(self, tiny_reference):
        """Spot-check optimality against a few explicit subsets."""
        from repro.fields.grid import GridField
        from repro.surfaces.reconstruction import reconstruct_surface

        result = exhaustive_osd(tiny_reference, k=2, rc=30.0, stride=5)
        gf = GridField(tiny_reference)
        cand = candidate_grid(tiny_reference, stride=5)
        rng = np.random.default_rng(0)
        for _ in range(10):
            idx = rng.choice(len(cand), size=2, replace=False)
            subset = cand[idx]
            delta = reconstruct_surface(
                tiny_reference, subset, values=gf.sample(subset)
            ).delta
            assert result.delta <= delta + 1e-9

    def test_connectivity_filter_matters(self, tiny_reference):
        """With a tight radius the optimum must sacrifice coverage."""
        loose = exhaustive_osd(tiny_reference, k=2, rc=30.0, stride=5)
        tight = exhaustive_osd(tiny_reference, k=2, rc=10.0, stride=5)
        assert tight.delta >= loose.delta - 1e-9
        assert tight.n_connected < loose.n_connected

    def test_search_space_guard(self, tiny_reference):
        with pytest.raises(ValueError, match="search space"):
            exhaustive_osd(tiny_reference, k=8, rc=10.0, stride=1)

    def test_impossible_connectivity(self, tiny_reference):
        # Candidates 10 apart, radius 1: no connected pair exists.
        with pytest.raises(ValueError, match="no connected"):
            exhaustive_osd(tiny_reference, k=2, rc=1.0, stride=5)

    def test_validation(self, tiny_reference):
        with pytest.raises(ValueError):
            exhaustive_osd(tiny_reference, k=0, rc=10.0)
        with pytest.raises(ValueError):
            exhaustive_osd(tiny_reference, k=2, rc=-1.0)
        with pytest.raises(ValueError, match="candidates"):
            exhaustive_osd(
                tiny_reference, k=5, rc=10.0,
                candidates=np.zeros((3, 2)),
            )


class TestFRAApproximation:
    def test_fra_within_factor_of_optimum(self, tiny_reference):
        """FRA's empirical approximation ratio on a tiny instance.

        FRA picks from the full grid while the exact solver is restricted
        to a coarse candidate set, so FRA can even beat the 'optimum';
        the assertion bounds how much worse it may be.
        """
        from repro.core.fra import foresighted_refinement
        from repro.fields.grid import GridField
        from repro.surfaces.reconstruction import reconstruct_surface

        k, rc = 3, 12.0
        exact = exhaustive_osd(tiny_reference, k=k, rc=rc, stride=5)
        fra = foresighted_refinement(tiny_reference, k, rc)
        gf = GridField(tiny_reference)
        pts = np.vstack([fra.positions, fra.anchor_positions])
        fra_delta = reconstruct_surface(
            tiny_reference, pts, values=gf.sample(pts)
        ).delta
        assert fra_delta <= 2.0 * exact.delta
