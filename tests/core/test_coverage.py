"""Tests for sensing-coverage metrics."""

import numpy as np
import pytest

from repro.core.baselines import uniform_grid_placement
from repro.core.coverage import (
    coverage_radius_for_full_coverage,
    sensing_coverage,
)
from repro.geometry.primitives import BoundingBox

REGION = BoundingBox.square(100.0)


class TestSensingCoverage:
    def test_empty_layout(self):
        assert sensing_coverage(np.empty((0, 2)), 5.0, REGION) == 0.0

    def test_single_node_disk_area(self):
        cov = sensing_coverage(
            np.array([[50.0, 50.0]]), 10.0, REGION, resolution=201
        )
        assert np.isclose(cov, np.pi * 100 / 10000, rtol=0.05)

    def test_full_coverage_with_huge_radius(self):
        pts = np.array([[50.0, 50.0]])
        assert sensing_coverage(pts, 100.0, REGION) == 1.0

    def test_monotone_in_k(self):
        covs = [
            sensing_coverage(
                uniform_grid_placement(REGION, k), 5.0, REGION, resolution=101
            )
            for k in (25, 100, 225)
        ]
        assert covs[0] < covs[1] < covs[2]

    def test_monotone_in_radius(self):
        pts = uniform_grid_placement(REGION, 49)
        assert sensing_coverage(pts, 3.0, REGION) < sensing_coverage(
            pts, 8.0, REGION
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            sensing_coverage(np.zeros((1, 2)), 0.0, REGION)
        with pytest.raises(ValueError):
            sensing_coverage(np.zeros((1, 2)), 5.0, REGION, resolution=1)


class TestFullCoverageRadius:
    def test_lattice_bound(self):
        # 100 nodes on a 100 m square: spacing 10, need r >= 10/sqrt(2).
        r = coverage_radius_for_full_coverage(100, REGION)
        assert np.isclose(r, 10.0 / np.sqrt(2.0))

    def test_grid_at_bound_covers(self):
        k = 100
        r = coverage_radius_for_full_coverage(k, REGION) * 1.05
        pts = uniform_grid_placement(REGION, k)
        assert sensing_coverage(pts, r, REGION, resolution=101) > 0.99

    def test_paper_threshold_anecdote(self):
        """The paper's k=125 / Rs=5 plateau onset is near the lattice bound."""
        r_needed = coverage_radius_for_full_coverage(125, REGION)
        assert 5.0 < r_needed < 7.5  # Rs=5 is just below full coverage

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_radius_for_full_coverage(0, REGION)
