"""Tests for the Foresighted Refinement Algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fra import (
    FRAConfig,
    SelectionCriterion,
    foresighted_refinement,
    solve_osd,
)
from repro.core.problem import OSDProblem
from repro.graphs.geometric import unit_disk_graph
from repro.graphs.traversal import is_connected


RC = 10.0


class TestBudgetAccounting:
    def test_exactly_k_nodes(self, bump_reference):
        for k in (1, 2, 7, 30):
            result = foresighted_refinement(bump_reference, k, RC)
            assert result.k == k
            assert result.n_refinement + result.n_relays + result.n_leftover == k

    def test_invalid_inputs(self, bump_reference):
        with pytest.raises(ValueError):
            foresighted_refinement(bump_reference, 0, RC)
        with pytest.raises(ValueError):
            foresighted_refinement(bump_reference, 5, 0.0)

    def test_corners_as_nodes_consume_budget(self, bump_reference):
        result = foresighted_refinement(
            bump_reference, 10, RC, FRAConfig(corners_are_nodes=True)
        )
        assert result.k == 10
        corners = {(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)}
        placed = {tuple(p) for p in result.positions}
        assert corners <= placed
        assert len(result.anchor_positions) == 0

    def test_corners_as_nodes_small_k_raises(self, bump_reference):
        with pytest.raises(ValueError):
            foresighted_refinement(
                bump_reference, 3, RC, FRAConfig(corners_are_nodes=True)
            )

    def test_anchor_positions_exposed(self, bump_reference):
        result = foresighted_refinement(bump_reference, 5, RC)
        assert len(result.anchor_positions) == 4


class TestConnectivity:
    @pytest.mark.parametrize("k", [5, 12, 25, 40])
    def test_layout_connected(self, bump_reference, k):
        result = foresighted_refinement(bump_reference, k, RC)
        assert result.connected
        assert is_connected(unit_disk_graph(result.positions, RC))

    def test_single_node_connected(self, bump_reference):
        result = foresighted_refinement(bump_reference, 1, RC)
        assert result.connected

    def test_positions_inside_region(self, bump_reference):
        result = foresighted_refinement(bump_reference, 30, RC)
        region = bump_reference.region
        for x, y in result.positions:
            assert region.contains((x, y), tol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=20))
    def test_property_connected_for_all_k(self, k):
        import repro.fields.analytic as fa
        from repro.fields.base import sample_grid
        from repro.geometry.primitives import BoundingBox

        field = fa.GaussianMixtureField.random(
            4, BoundingBox.square(60.0), seed=k
        )
        reference = sample_grid(field, BoundingBox.square(60.0), 31)
        result = foresighted_refinement(reference, k, 10.0)
        assert result.connected


class TestQuality:
    def test_beats_random_on_features(self, greenorbs_reference):
        from repro.core.baselines import random_placement
        from repro.fields.grid import GridField
        from repro.surfaces.reconstruction import reconstruct_surface

        k = 40
        problem = OSDProblem(k=k, rc=RC, reference=greenorbs_reference)
        fra = solve_osd(problem)
        gf = GridField(greenorbs_reference)
        random_deltas = []
        for seed in range(3):
            pts = random_placement(greenorbs_reference.region, k, seed=seed)
            random_deltas.append(
                reconstruct_surface(
                    greenorbs_reference, pts, values=gf.sample(pts)
                ).delta
            )
        assert fra.delta < np.mean(random_deltas)

    def test_delta_decreases_with_k(self, greenorbs_reference):
        deltas = [
            solve_osd(
                OSDProblem(k=k, rc=RC, reference=greenorbs_reference)
            ).delta
            for k in (10, 40, 80)
        ]
        assert deltas[0] > deltas[1] > deltas[2]

    def test_incremental_matches_full_recompute(self, bump_reference):
        fast = foresighted_refinement(
            bump_reference, 15, RC, FRAConfig(incremental=True)
        )
        slow = foresighted_refinement(
            bump_reference, 15, RC, FRAConfig(incremental=False)
        )
        assert np.allclose(fast.positions, slow.positions)

    def test_record_history_monotone_tail(self, bump_reference):
        result = foresighted_refinement(
            bump_reference, 20, RC, FRAConfig(record_history=True)
        )
        assert len(result.history) >= result.n_refinement
        ks = [k for k, _ in result.history]
        assert ks == sorted(ks)


class TestSelectionCriteria:
    @pytest.mark.parametrize("criterion", list(SelectionCriterion))
    def test_all_criteria_run(self, bump_reference, criterion):
        result = foresighted_refinement(
            bump_reference, 12, RC, FRAConfig(selection=criterion, seed=1)
        )
        assert result.k == 12
        assert result.connected

    def test_random_criterion_seeded(self, bump_reference):
        cfg = FRAConfig(selection=SelectionCriterion.RANDOM, seed=9)
        a = foresighted_refinement(bump_reference, 10, RC, cfg)
        b = foresighted_refinement(bump_reference, 10, RC, cfg)
        assert np.allclose(a.positions, b.positions)


class TestSolveOSD:
    def test_placement_result_fields(self, bump_reference):
        problem = OSDProblem(k=20, rc=RC, reference=bump_reference)
        result = solve_osd(problem)
        assert result.k == 20
        assert result.connected
        assert result.delta > 0
        assert result.meta["algorithm"] == "fra"

    def test_anchor_toggle_changes_delta(self, greenorbs_reference):
        problem = OSDProblem(k=15, rc=RC, reference=greenorbs_reference)
        with_anchors = solve_osd(problem, FRAConfig(anchors_in_reconstruction=True))
        without = solve_osd(problem, FRAConfig(anchors_in_reconstruction=False))
        assert with_anchors.delta != without.delta
