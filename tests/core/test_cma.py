"""Tests for the per-node CMA planner."""

import numpy as np
import pytest

from repro.core.cma import (
    CMAParams,
    LocalSensing,
    NeighborObservation,
    estimate_own_curvature,
    plan_move,
)
from repro.geometry.primitives import BoundingBox
from repro.surfaces.quadric import QuadricFitMode

REGION = BoundingBox.square(100.0)


def sensing_from(fn, center, rs=5.0):
    xs = np.arange(center[0] - rs, center[0] + rs + 0.5)
    ys = np.arange(center[1] - rs, center[1] + rs + 0.5)
    xx, yy = np.meshgrid(xs, ys)
    mask = (xx - center[0]) ** 2 + (yy - center[1]) ** 2 <= rs**2
    pts = np.column_stack([xx[mask], yy[mask]])
    values = fn(pts[:, 0], pts[:, 1])
    curv = np.zeros(len(pts))
    return LocalSensing(positions=pts, values=values, curvatures=curv)


class TestParams:
    def test_defaults_match_paper(self):
        p = CMAParams()
        assert p.rc == 10.0
        assert p.rs == 5.0
        assert p.beta == 2.0
        assert p.speed == 1.0

    def test_max_step(self):
        assert CMAParams(speed=1.0, dt=1.0).max_step == 1.0
        assert CMAParams(speed=20.0, dt=1.0, rs=5.0).max_step == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CMAParams(speed=0.0)
        with pytest.raises(ValueError):
            CMAParams(dt=0.0)
        with pytest.raises(ValueError):
            CMAParams(step_gain=0.0)
        with pytest.raises(ValueError):
            CMAParams(rc=-1.0)


class TestSensing:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalSensing(
                positions=np.zeros((3, 2)),
                values=np.zeros(3),
                curvatures=np.zeros(2),
            )

    def test_peak_selection(self):
        s = LocalSensing(
            positions=np.array([[0.0, 0.0], [1.0, 1.0]]),
            values=np.zeros(2),
            curvatures=np.array([0.5, 2.0]),
        )
        pos, curv = s.peak()
        assert np.allclose(pos, [1.0, 1.0])
        assert curv == 2.0

    def test_empty_peak(self):
        s = LocalSensing(
            positions=np.empty((0, 2)), values=np.empty(0), curvatures=np.empty(0)
        )
        assert s.peak() == (None, 0.0)


class TestOwnCurvature:
    def test_quadric_on_bowl(self):
        center = (50.0, 50.0)
        bowl = lambda x, y: 0.1 * ((x - 50) ** 2 + (y - 50) ** 2)
        s = sensing_from(bowl, center)
        g = estimate_own_curvature(s, np.array(center), CMAParams())
        # a = c = 0.1, b = 0 -> g1 = g2 = 0.2, G = 0.04.
        assert np.isclose(g, 0.04, atol=1e-9)

    def test_too_few_samples_zero(self):
        s = LocalSensing(
            positions=np.zeros((2, 2)), values=np.zeros(2), curvatures=np.zeros(2)
        )
        assert estimate_own_curvature(s, np.zeros(2), CMAParams()) == 0.0

    def test_signed_mode(self):
        center = (50.0, 50.0)
        saddle = lambda x, y: 0.1 * (x - 50) * (y - 50)
        s = sensing_from(saddle, center)
        g_abs = estimate_own_curvature(s, np.array(center), CMAParams())
        g_signed = estimate_own_curvature(
            s, np.array(center), CMAParams(signed_curvature=True)
        )
        assert g_signed < 0 < g_abs


class TestPlanMove:
    def flat_sensing(self, center):
        return sensing_from(lambda x, y: np.zeros_like(x), center)

    def test_balanced_node_stays(self):
        pos = np.array([50.0, 50.0])
        nbrs = [
            NeighborObservation(1, np.array([55.0, 50.0]), 1.0),
            NeighborObservation(2, np.array([45.0, 50.0]), 1.0),
            NeighborObservation(3, np.array([50.0, 55.0]), 1.0),
            NeighborObservation(4, np.array([50.0, 45.0]), 1.0),
        ]
        plan = plan_move(0, pos, self.flat_sensing(pos), nbrs, CMAParams(), REGION)
        # Attractions cancel; repulsion cancels; flat field -> tiny force.
        assert not plan.moved or np.linalg.norm(plan.destination - pos) < 0.5

    def test_unbalanced_moves_toward_heavy_side(self):
        pos = np.array([50.0, 50.0])
        nbrs = [
            NeighborObservation(1, np.array([58.0, 50.0]), 3.0),
            NeighborObservation(2, np.array([42.0, 50.0]), 0.0),
        ]
        plan = plan_move(0, pos, self.flat_sensing(pos), nbrs, CMAParams(), REGION)
        assert plan.moved
        assert plan.destination[0] > pos[0]

    def test_speed_cap_respected(self):
        pos = np.array([50.0, 50.0])
        nbrs = [NeighborObservation(1, np.array([59.0, 50.0]), 100.0)]
        params = CMAParams(speed=1.0, dt=1.0)
        plan = plan_move(0, pos, self.flat_sensing(pos), nbrs, params, REGION)
        assert np.linalg.norm(plan.destination - pos) <= params.max_step + 1e-9

    def test_destination_clamped_to_region(self):
        pos = np.array([0.5, 0.5])
        nbrs = [NeighborObservation(1, np.array([0.0, 0.0]), 0.0)]
        plan = plan_move(
            0, pos, self.flat_sensing(pos), nbrs,
            CMAParams(speed=50.0, dt=1.0, step_gain=10.0), REGION,
        )
        assert REGION.contains(tuple(plan.destination), tol=1e-9)

    def test_plan_carries_neighbor_table(self):
        pos = np.array([50.0, 50.0])
        nbrs = [NeighborObservation(7, np.array([55.0, 50.0]), 1.0)]
        plan = plan_move(0, pos, self.flat_sensing(pos), nbrs, CMAParams(), REGION)
        assert [n.node_id for n in plan.neighbor_table] == [7]

    def test_no_neighbors_no_peak_stays(self):
        pos = np.array([50.0, 50.0])
        empty = LocalSensing(
            positions=np.empty((0, 2)), values=np.empty(0), curvatures=np.empty(0)
        )
        plan = plan_move(0, pos, empty, [], CMAParams(), REGION)
        assert not plan.moved
