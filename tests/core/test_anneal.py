"""Tests for the connectivity-preserving local search."""

import numpy as np
import pytest

from repro.core.anneal import local_search_osd
from repro.core.fra import foresighted_refinement
from repro.fields.grid import GridField
from repro.graphs.geometric import unit_disk_graph
from repro.graphs.traversal import is_connected
from repro.surfaces.reconstruction import reconstruct_surface

RC = 10.0


@pytest.fixture
def start(bump_reference):
    result = foresighted_refinement(bump_reference, 15, RC)
    return result


class TestLocalSearch:
    def test_never_worse_than_start(self, bump_reference, start):
        out = local_search_osd(
            bump_reference, start.positions, RC, iterations=30, seed=0,
            fixed_positions=start.anchor_positions,
        )
        assert out.delta <= out.initial_delta + 1e-9
        assert 0.0 <= out.improvement <= 1.0

    def test_result_stays_connected(self, bump_reference, start):
        out = local_search_osd(
            bump_reference, start.positions, RC, iterations=30, seed=0,
            fixed_positions=start.anchor_positions,
        )
        assert is_connected(unit_disk_graph(out.positions, RC))

    def test_positions_stay_in_region(self, bump_reference, start):
        out = local_search_osd(
            bump_reference, start.positions, RC, iterations=30, seed=0,
            fixed_positions=start.anchor_positions,
        )
        region = bump_reference.region
        for x, y in out.positions:
            assert region.contains((x, y), tol=1e-9)

    def test_deterministic(self, bump_reference, start):
        a = local_search_osd(
            bump_reference, start.positions, RC, iterations=20, seed=3,
            fixed_positions=start.anchor_positions,
        )
        b = local_search_osd(
            bump_reference, start.positions, RC, iterations=20, seed=3,
            fixed_positions=start.anchor_positions,
        )
        assert np.array_equal(a.positions, b.positions)
        assert a.delta == b.delta

    def test_reported_delta_matches_layout(self, bump_reference, start):
        out = local_search_osd(
            bump_reference, start.positions, RC, iterations=20, seed=0,
            fixed_positions=start.anchor_positions,
        )
        full = np.vstack([out.positions, start.anchor_positions])
        recomputed = reconstruct_surface(
            bump_reference, full,
            values=GridField(bump_reference).sample(full),
        ).delta
        assert np.isclose(out.delta, recomputed)

    def test_history_monotone(self, bump_reference, start):
        out = local_search_osd(
            bump_reference, start.positions, RC, iterations=40, seed=0,
            fixed_positions=start.anchor_positions,
        )
        deltas = [d for _, d in out.history]
        assert deltas == sorted(deltas, reverse=True)

    def test_temperature_accepts_regressions(self, bump_reference, start):
        cold = local_search_osd(
            bump_reference, start.positions, RC, iterations=40, seed=5,
            temperature=0.0, fixed_positions=start.anchor_positions,
        )
        hot = local_search_osd(
            bump_reference, start.positions, RC, iterations=40, seed=5,
            temperature=1e6, fixed_positions=start.anchor_positions,
        )
        # With an absurd temperature, essentially every connected proposal
        # is accepted; the best-so-far is still tracked separately.
        assert hot.n_accepted >= cold.n_accepted
        assert hot.delta <= hot.initial_delta + 1e-9

    def test_validation(self, bump_reference):
        disconnected = np.array([[0.0, 0.0], [90.0, 90.0]])
        with pytest.raises(ValueError, match="connected"):
            local_search_osd(bump_reference, disconnected, RC, iterations=5)
        with pytest.raises(ValueError):
            local_search_osd(
                bump_reference, np.array([[1.0, 1.0]]), RC, iterations=0
            )
        with pytest.raises(ValueError):
            local_search_osd(
                bump_reference, np.array([[1.0, 1.0]]), RC,
                iterations=5, initial_step=0.0,
            )
        with pytest.raises(ValueError):
            local_search_osd(bump_reference, np.empty((0, 2)), RC)
