"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass
else:
    # "ci" is fully derandomized: the same examples every run, no shrink
    # timing flakiness — select it with HYPOTHESIS_PROFILE=ci (the CI
    # workflow does). "dev" keeps random exploration but drops the
    # per-example deadline, which misfires on cold numpy imports.
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.fields.analytic import GaussianBump, GaussianMixtureField, PeaksField
from repro.fields.base import sample_grid
from repro.fields.greenorbs import GreenOrbsLightField
from repro.geometry.primitives import BoundingBox


@pytest.fixture(autouse=True)
def _no_tracemalloc_leak():
    """Stop tracemalloc after any test that turned it on.

    :class:`repro.obs.profile.PhaseProfiler` starts tracemalloc and has
    no teardown hook (middleware lifetime is the engine's); left running
    it would roughly double allocation cost for every test that follows.
    The check is one ``is_tracing()`` call when nothing was started.
    """
    import tracemalloc

    started_before = tracemalloc.is_tracing()
    yield
    if tracemalloc.is_tracing() and not started_before:
        tracemalloc.stop()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def unit_region():
    return BoundingBox.square(100.0)


@pytest.fixture
def small_region():
    return BoundingBox.square(20.0)


@pytest.fixture
def bump_field():
    """A two-bump analytic field with known derivatives."""
    return GaussianMixtureField(
        [
            GaussianBump(cx=30.0, cy=40.0, sigma=8.0, amplitude=5.0),
            GaussianBump(cx=70.0, cy=60.0, sigma=12.0, amplitude=3.0),
        ],
        baseline=1.0,
    )


@pytest.fixture
def bump_reference(bump_field, unit_region):
    """The bump field sampled on a coarse grid (fast tests)."""
    return sample_grid(bump_field, unit_region, 51)


@pytest.fixture
def peaks_reference():
    field = PeaksField(side=100.0)
    return sample_grid(field, field.region, 51)


@pytest.fixture
def greenorbs_field():
    return GreenOrbsLightField(side=100.0, seed=7)


@pytest.fixture
def greenorbs_reference(greenorbs_field):
    return sample_grid(greenorbs_field, greenorbs_field.region, 51, t=600.0)
