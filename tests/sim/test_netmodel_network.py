"""Unit tests for the NetworkModel pipeline, delay queue and churn models."""

import json

import numpy as np
import pytest

from repro.sim.netmodel import (
    BernoulliLink,
    CrashSchedule,
    EnergyDepletionModel,
    GilbertElliottLink,
    NetworkModel,
    PerfectLink,
    RandomChurn,
    RetryPolicy,
    UniformDelayModel,
)
from repro.sim.netmodel.delay import BeaconDelayQueue, PendingBeacon
from repro.sim.node import NodeState
from repro.sim.radio import Radio

RC = 10.0


def line_positions(n, spacing=5.0):
    """n nodes on a line, each hearing its immediate neighbours."""
    return np.array([[i * spacing, 0.0] for i in range(n)])


def make_network(**kwargs):
    kwargs.setdefault("link", PerfectLink())
    return NetworkModel(**kwargs)


def run_exchange(net, positions, round_index=0, alive=None, curvatures=None):
    radio = Radio(RC)
    k = len(positions)
    curvs = curvatures if curvatures is not None else [float(i) for i in range(k)]
    return net.exchange(radio, positions, curvs, alive, round_index)


class TestPerfectEquivalence:
    def test_matches_plain_radio(self):
        """PerfectLink + no delay + max_age 0 == the legacy radio exchange."""
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 30, size=(12, 2))
        curvs = rng.uniform(0, 4, size=12).tolist()
        alive = np.ones(12, dtype=bool)
        alive[3] = False

        baseline = Radio(RC).exchange(pts, curvs, alive=alive)
        heard = make_network().exchange(Radio(RC), pts, curvs, alive, 0)
        assert len(heard) == len(baseline)
        for got, exp in zip(heard, baseline):
            assert [o.node_id for o in got] == [o.node_id for o in exp]
            assert [o.curvature for o in got] == [o.curvature for o in exp]
            assert all(o.staleness == 0 for o in got)
            for g, e in zip(got, exp):
                assert np.array_equal(g.position, e.position)


class TestDelay:
    def test_delayed_beacon_arrives_late_with_staleness(self):
        net = make_network(
            delay=UniformDelayModel(0), max_age=3
        )
        # Force a deterministic 2-round delay by pushing directly.
        net.queue.push(PendingBeacon(
            deliver_round=2, receiver=0, sender=1,
            x=5.0, y=0.0, curvature=1.5, sent_round=0,
        ))
        pts = np.array([[0.0, 0.0], [100.0, 100.0]])  # out of range now
        assert run_exchange(net, pts, round_index=1)[0] == []
        inbox = run_exchange(net, pts, round_index=2)[0]
        assert [o.node_id for o in inbox] == [1]
        assert inbox[0].staleness == 2
        assert inbox[0].curvature == 1.5
        assert np.array_equal(inbox[0].position, [5.0, 0.0])

    def test_fresh_beacon_beats_stale_cache_entry(self):
        net = make_network(max_age=4)
        pts = line_positions(2)
        run_exchange(net, pts, round_index=0, curvatures=[0.0, 1.0])
        inbox = run_exchange(net, pts, round_index=1, curvatures=[0.0, 9.0])[0]
        assert [o.curvature for o in inbox] == [9.0]
        assert inbox[0].staleness == 0

    def test_cache_entries_evicted_past_max_age(self):
        net = make_network(max_age=2)
        pts = line_positions(2)
        run_exchange(net, pts, round_index=0)
        # Move node 1 out of range; the cached state ages out at age 3.
        far = np.array([[0.0, 0.0], [100.0, 0.0]])
        assert [o.staleness for o in run_exchange(net, far, 1)[0]] == [1]
        assert [o.staleness for o in run_exchange(net, far, 2)[0]] == [2]
        assert run_exchange(net, far, 3)[0] == []

    def test_dead_receiver_hears_nothing(self):
        net = make_network(max_age=3)
        pts = line_positions(3)
        run_exchange(net, pts, round_index=0)
        alive = np.array([True, False, True])
        heard = run_exchange(net, pts, round_index=1, alive=alive)
        assert heard[1] == []

    def test_zero_max_delay_consumes_no_rng(self):
        model = UniformDelayModel(0, seed=4)
        before = json.dumps(model.state_dict(), default=str)
        assert all(model.sample() == 0 for _ in range(50))
        assert json.dumps(model.state_dict(), default=str) == before

    def test_samples_within_bound(self):
        model = UniformDelayModel(3, seed=4)
        draws = {model.sample() for _ in range(300)}
        assert draws == {0, 1, 2, 3}

    def test_queue_round_trips_through_json(self):
        queue = BeaconDelayQueue()
        queue.push(PendingBeacon(5, 0, 1, 1.0, 2.0, 3.0, 4))
        queue.push(PendingBeacon(4, 1, 0, 0.5, 0.5, 0.1, 3))
        restored = BeaconDelayQueue()
        restored.load_state_dict(json.loads(json.dumps(queue.state_dict())))
        assert restored.state_dict() == queue.state_dict()
        assert [b.receiver for b in restored.pop_due(4)] == [1]
        assert len(restored) == 1


class TestRetry:
    def test_backoff_slots_double(self):
        policy = RetryPolicy(max_retries=3, backoff_base=2)
        assert [policy.backoff_slots(a) for a in range(3)] == [2, 4, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1)

    @staticmethod
    def _link_starting_bad():
        """A channel whose bursts deterministically end after one slot.

        Both directed links start in the bad state; the first attempt in
        a round is always lost, and any idle/transmission slot after it
        recovers the link for good (p_fail = 0).
        """
        link = GilbertElliottLink(
            p_fail=0.0, p_recover=1.0, loss_good=0.0, loss_bad=1.0, seed=0
        )
        link.load_state_dict(
            {"rng": link.rng_state, "bad": {"0,1": 1, "1,0": 1}}
        )
        return link

    def test_retries_recover_bursty_losses(self):
        """One backoff slot outlives the burst, so the retry goes through."""
        net = NetworkModel(
            self._link_starting_bad(), retry=RetryPolicy(max_retries=1)
        )
        heard = run_exchange(net, line_positions(2), round_index=0)
        assert [o.node_id for o in heard[0]] == [1]
        assert [o.node_id for o in heard[1]] == [0]

    def test_no_retry_drops_bursty_losses(self):
        net = NetworkModel(self._link_starting_bad())
        pts = line_positions(2)
        # Round 0 hits the burst and (max_age=0) nothing is heard; the
        # lost attempt itself ends the burst, so round 1 goes through.
        assert run_exchange(net, pts, round_index=0) == [[], []]
        heard = run_exchange(net, pts, round_index=1)
        assert [o.node_id for o in heard[0]] == [1]


class TestNetworkState:
    def test_state_round_trips_mid_run(self):
        """Snapshot after round r, restore, replay — identical inboxes."""
        def build():
            return NetworkModel(
                BernoulliLink(0.4, seed=3),
                delay=UniformDelayModel(2, seed=5),
                retry=RetryPolicy(max_retries=1),
                max_age=3,
            )

        rng = np.random.default_rng(11)
        pts = [rng.uniform(0, 25, size=(8, 2)) for _ in range(6)]
        reference = build()
        for r in range(3):
            run_exchange(reference, pts[r], round_index=r)
        snapshot = json.loads(json.dumps(reference.state_dict(), default=str))

        restored = build()
        restored.load_state_dict(snapshot)
        for r in range(3, 6):
            a = run_exchange(reference, pts[r], round_index=r)
            b = run_exchange(restored, pts[r], round_index=r)
            for inbox_a, inbox_b in zip(a, b):
                assert [(o.node_id, o.staleness, o.curvature) for o in inbox_a] \
                    == [(o.node_id, o.staleness, o.curvature) for o in inbox_b]

    def test_reset_clears_queue_and_cache(self):
        net = make_network(delay=UniformDelayModel(2, seed=1), max_age=3)
        pts = line_positions(3)
        for r in range(3):
            run_exchange(net, pts, round_index=r)
        net.reset()
        assert net.state_dict()["queue"] == []
        assert net.state_dict()["cache"] == {}

    def test_rejects_negative_max_age(self):
        with pytest.raises(ValueError):
            NetworkModel(max_age=-1)


class TestEngineBitIdentity:
    """A disabled-fault NetworkModel must not perturb the engine at all."""

    @staticmethod
    def run_engine(**kwargs):
        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=40.0, seed=3, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=16, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=6.0,
        )
        return MobileSimulation(problem, resolution=41, **kwargs).run(6)

    def test_perfect_network_matches_plain_engine(self):
        plain = self.run_engine()
        netted = self.run_engine(
            network=NetworkModel(PerfectLink(), max_age=0)
        )
        assert np.array_equal(netted.deltas, plain.deltas)
        assert np.array_equal(netted.rmses, plain.rmses)
        assert np.array_equal(netted.final_positions, plain.final_positions)

    def test_zero_intensity_models_match_plain_engine(self):
        """p=0 loss and 0-round delay consume no RNG: still bit-identical."""
        plain = self.run_engine()
        netted = self.run_engine(
            network=NetworkModel(
                BernoulliLink(0.0, seed=1),
                delay=UniformDelayModel(0, seed=2),
                retry=RetryPolicy(max_retries=2),
                max_age=0,
            )
        )
        assert np.array_equal(netted.deltas, plain.deltas)
        assert np.array_equal(netted.final_positions, plain.final_positions)

    def test_network_plus_message_loss_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            from repro.sim.failures import MessageLossModel

            self.run_engine(
                network=NetworkModel(PerfectLink()),
                message_loss=MessageLossModel(0.1),
            )


def make_nodes(n):
    return [
        NodeState(node_id=i, position=np.array([float(i), 0.0]))
        for i in range(n)
    ]


class TestCrashSchedule:
    def test_crash_then_recover(self):
        nodes = make_nodes(3)
        sched = CrashSchedule(at={602.0: {1: 2}})
        sched.step(601.0, 0, nodes)
        assert nodes[1].alive
        sched.step(602.0, 1, nodes)
        assert not nodes[1].alive and nodes[1].died_at is None
        sched.step(603.0, 2, nodes)
        assert not nodes[1].alive
        sched.step(604.0, 3, nodes)
        assert nodes[1].alive

    def test_dead_nodes_never_revived(self):
        nodes = make_nodes(2)
        sched = CrashSchedule(at={602.0: {1: 1}})
        sched.step(602.0, 0, nodes)
        nodes[1].died_at = 602.5  # dies for good while crashed
        sched.step(603.0, 1, nodes)
        assert not nodes[1].alive

    def test_state_round_trip_keeps_pending_recovery(self):
        nodes = make_nodes(2)
        sched = CrashSchedule(at={602.0: {1: 2}})
        sched.step(602.0, 0, nodes)
        state = json.loads(json.dumps(sched.state_dict()))

        restored = CrashSchedule(at={602.0: {1: 2}})
        restored.load_state_dict(state)
        restored.step(603.0, 1, nodes)   # not due yet
        assert not nodes[1].alive
        restored.step(604.0, 2, nodes)   # recovery round reached
        assert nodes[1].alive

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule(at={600.0: {0: 0}})


class TestRandomChurn:
    def test_deterministic_given_seed(self):
        def liveness(seed):
            nodes = make_nodes(6)
            churn = RandomChurn(0.4, recover_prob=0.5, seed=seed)
            series = []
            for r in range(12):
                churn.step(600.0 + r, r, nodes)
                series.append(tuple(n.alive for n in nodes))
            return series

        assert liveness(3) == liveness(3)
        assert liveness(3) != liveness(4)

    def test_crashes_are_transient(self):
        nodes = make_nodes(4)
        churn = RandomChurn(0.5, recover_prob=1.0, seed=0)
        crashed_at_some_point = False
        for r in range(20):
            churn.step(600.0 + r, r, nodes)
            crashed_at_some_point |= not all(n.alive for n in nodes)
            # recover_prob=1: a node down entering this round comes back
            # before the next one, and nobody ever dies permanently.
            assert all(n.died_at is None for n in nodes)
        assert crashed_at_some_point

    def test_zero_probability_consumes_no_rng(self):
        nodes = make_nodes(3)
        churn = RandomChurn(0.0, seed=7)
        before = json.dumps(churn.state_dict(), default=str)
        for r in range(10):
            churn.step(600.0 + r, r, nodes)
        assert json.dumps(churn.state_dict(), default=str) == before

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomChurn(1.0)
        with pytest.raises(ValueError):
            RandomChurn(0.1, recover_prob=0.0)


class TestEnergyDepletion:
    def test_movement_and_idle_drain(self):
        nodes = make_nodes(1)
        model = EnergyDepletionModel(capacity=10.0, move_cost=2.0, idle_cost=1.0)
        model.step(600.0, 0, nodes)
        assert model.remaining(0) == pytest.approx(9.0)
        nodes[0].distance_travelled = 3.0
        model.step(601.0, 1, nodes)
        assert model.remaining(0) == pytest.approx(9.0 - 1.0 - 6.0)

    def test_kills_at_capacity(self):
        nodes = make_nodes(1)
        model = EnergyDepletionModel(capacity=2.5, idle_cost=1.0, move_cost=0.0)
        for r in range(3):
            model.step(600.0 + r, r, nodes)
        assert not nodes[0].alive
        assert nodes[0].died_at == 602.0

    def test_crashed_nodes_consume_nothing(self):
        nodes = make_nodes(1)
        nodes[0].crash()
        model = EnergyDepletionModel(capacity=5.0, idle_cost=1.0)
        for r in range(10):
            model.step(600.0 + r, r, nodes)
        nodes[0].recover()
        model.step(610.0, 10, nodes)
        assert model.remaining(0) == pytest.approx(4.0)

    def test_state_round_trip(self):
        nodes = make_nodes(2)
        model = EnergyDepletionModel(capacity=10.0, idle_cost=1.0)
        nodes[0].distance_travelled = 2.0
        model.step(600.0, 0, nodes)
        restored = EnergyDepletionModel(capacity=10.0, idle_cost=1.0)
        restored.load_state_dict(json.loads(json.dumps(model.state_dict())))
        assert restored.remaining(0) == model.remaining(0)
        assert restored.remaining(1) == model.remaining(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyDepletionModel(capacity=0.0)
        with pytest.raises(ValueError):
            EnergyDepletionModel(capacity=1.0, move_cost=-1.0)
