"""Tests for the centralized-dispatch baseline."""

import numpy as np
import pytest

from repro.core.problem import OSTDProblem
from repro.fields.greenorbs import GreenOrbsLightField
from repro.sim.centralized import (
    CentralizedSimulation,
    cma_message_count,
)
from repro.sim.engine import MobileSimulation


def make_problem(k=16, duration=4.0, side=40.0):
    field = GreenOrbsLightField(side=side, seed=3, freeze_sun_at=600.0)
    return OSTDProblem(
        k=k, rc=10.0, rs=5.0, region=field.region, field=field,
        speed=1.0, t0=600.0, duration=duration,
    )


class TestSetup:
    def test_validation(self):
        with pytest.raises(ValueError):
            CentralizedSimulation(make_problem(), delay_rounds=-1)
        with pytest.raises(ValueError):
            CentralizedSimulation(make_problem(), replan_every=0)
        with pytest.raises(ValueError):
            CentralizedSimulation(
                make_problem(), initial_positions=np.zeros((3, 2))
            )

    def test_default_init_matches_engine(self):
        central = CentralizedSimulation(make_problem(), resolution=41)
        engine = MobileSimulation(make_problem(), resolution=41)
        assert np.allclose(central.positions, engine.positions)


class TestRounds:
    def test_run_shape(self):
        result = CentralizedSimulation(
            make_problem(), replan_every=2, solver_iterations=5, resolution=41
        ).run()
        assert len(result.rounds) == 4
        assert result.deltas.shape == (4,)
        assert result.times.tolist() == [600.0, 601.0, 602.0, 603.0]

    def test_speed_cap(self):
        sim = CentralizedSimulation(
            make_problem(), replan_every=1, solver_iterations=5, resolution=41
        )
        prev = sim.positions.copy()
        sim.step()
        moved = np.linalg.norm(sim.positions - prev, axis=1)
        assert (moved <= 1.0 + 1e-9).all()

    def test_messages_counted_on_replan_rounds_only(self):
        sim = CentralizedSimulation(
            make_problem(), replan_every=3, solver_iterations=3, resolution=41
        )
        records = [sim.step() for _ in range(4)]
        assert records[0].n_messages > 0
        assert records[1].n_messages == 0
        assert records[2].n_messages == 0
        assert records[3].n_messages > 0

    def test_information_age_tracks_delay(self):
        sim = CentralizedSimulation(
            make_problem(), delay_rounds=4, replan_every=10,
            solver_iterations=3, resolution=41,
        )
        first = sim.step()
        second = sim.step()
        assert first.information_age == 4
        assert second.information_age == 5

    def test_run_validation(self):
        sim = CentralizedSimulation(make_problem(), resolution=41)
        with pytest.raises(ValueError):
            sim.run(n_rounds=0)

    def test_total_messages_accumulates(self):
        result = CentralizedSimulation(
            make_problem(), replan_every=2, solver_iterations=3, resolution=41
        ).run()
        assert result.total_messages == sum(r.n_messages for r in result.rounds)


class TestCmaMessageCount:
    def test_counts_beacons_and_tells(self):
        result = MobileSimulation(make_problem(), resolution=41).run()
        count = cma_message_count(result)
        n_alive_total = sum(r.n_alive for r in result.rounds)
        assert count >= n_alive_total  # at least one beacon per node-round
        assert count == n_alive_total + sum(r.n_moved for r in result.rounds)
