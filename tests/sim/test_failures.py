"""Tests for failure-injection models."""

import pytest

from repro.sim.failures import MessageLossModel, NodeFailureSchedule


class TestMessageLoss:
    def test_zero_probability_always_delivers(self):
        model = MessageLossModel(0.0)
        assert all(model.delivered() for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageLossModel(1.0)
        with pytest.raises(ValueError):
            MessageLossModel(-0.1)

    def test_deterministic_given_seed(self):
        a = MessageLossModel(0.5, seed=3)
        b = MessageLossModel(0.5, seed=3)
        assert [a.delivered() for _ in range(50)] == [
            b.delivered() for _ in range(50)
        ]

    def test_loss_rate(self):
        model = MessageLossModel(0.25, seed=0)
        outcomes = [model.delivered() for _ in range(4000)]
        rate = 1.0 - sum(outcomes) / len(outcomes)
        assert 0.2 < rate < 0.3


class TestNodeFailureSchedule:
    def test_fires_once(self):
        sched = NodeFailureSchedule(at={10.0: [1, 2]})
        assert sched.failures_due(5.0) == []
        assert sorted(sched.failures_due(10.0)) == [1, 2]
        assert sched.failures_due(11.0) == []

    def test_late_poll_catches_up(self):
        sched = NodeFailureSchedule(at={10.0: [0]})
        assert sched.failures_due(100.0) == [0]

    def test_multiple_times(self):
        sched = NodeFailureSchedule(at={5.0: [0], 10.0: [1]})
        assert sched.failures_due(7.0) == [0]
        assert sched.failures_due(12.0) == [1]

    def test_reset(self):
        sched = NodeFailureSchedule(at={5.0: [0]})
        sched.failures_due(6.0)
        sched.reset()
        assert sched.failures_due(6.0) == [0]
