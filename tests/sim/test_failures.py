"""Tests for failure-injection models."""

import pytest

from repro.sim.failures import MessageLossModel, NodeFailureSchedule


class TestMessageLoss:
    def test_zero_probability_always_delivers(self):
        model = MessageLossModel(0.0)
        assert all(model.delivered() for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageLossModel(1.0)
        with pytest.raises(ValueError):
            MessageLossModel(-0.1)

    def test_deterministic_given_seed(self):
        a = MessageLossModel(0.5, seed=3)
        b = MessageLossModel(0.5, seed=3)
        assert [a.delivered() for _ in range(50)] == [
            b.delivered() for _ in range(50)
        ]

    def test_loss_rate(self):
        model = MessageLossModel(0.25, seed=0)
        outcomes = [model.delivered() for _ in range(4000)]
        rate = 1.0 - sum(outcomes) / len(outcomes)
        assert 0.2 < rate < 0.3


class TestNodeFailureSchedule:
    def test_fires_once(self):
        sched = NodeFailureSchedule(at={10.0: [1, 2]})
        assert sched.failures_due(5.0) == []
        assert sorted(sched.failures_due(10.0)) == [1, 2]
        assert sched.failures_due(11.0) == []

    def test_late_poll_catches_up(self):
        sched = NodeFailureSchedule(at={10.0: [0]})
        assert sched.failures_due(100.0) == [0]

    def test_multiple_times(self):
        sched = NodeFailureSchedule(at={5.0: [0], 10.0: [1]})
        assert sched.failures_due(7.0) == [0]
        assert sched.failures_due(12.0) == [1]

    def test_reset(self):
        sched = NodeFailureSchedule(at={5.0: [0]})
        sched.failures_due(6.0)
        sched.reset()
        assert sched.failures_due(6.0) == [0]


class TestNodeFailureScheduleEdgeCases:
    """Regression tests: duplicate times and doubly-listed node ids."""

    def test_duplicate_times_in_pair_form_are_merged(self):
        # A dict literal with two equal keys silently keeps only the
        # last; the (time, ids) pair form must merge instead.
        sched = NodeFailureSchedule(at=[(5.0, [0, 1]), (5.0, [2])])
        assert sorted(sched.failures_due(5.0)) == [0, 1, 2]

    def test_int_and_float_times_collide_into_one_slot(self):
        sched = NodeFailureSchedule(at=[(5, [0]), (5.0, [1])])
        assert sorted(sched.failures_due(5.0)) == [0, 1]
        assert sched.failures_due(6.0) == []

    def test_node_listed_at_two_times_dies_once(self):
        sched = NodeFailureSchedule(at={5.0: [3], 8.0: [3, 4]})
        assert sched.failures_due(5.0) == [3]
        # Node 3 is already dead: only the newly doomed node surfaces.
        assert sched.failures_due(8.0) == [4]

    def test_node_listed_twice_at_one_time_announced_once(self):
        sched = NodeFailureSchedule(at=[(5.0, [2, 2])])
        assert sched.failures_due(5.0) == [2]

    def test_late_poll_with_duplicate_ids_no_double_death(self):
        # Both times come due in the same poll; the shared id must not
        # be announced twice.
        sched = NodeFailureSchedule(at={5.0: [1], 6.0: [1]})
        assert sched.failures_due(10.0) == [1]

    def test_restore_fired_rebuilds_announced_ids(self):
        sched = NodeFailureSchedule(at={5.0: [1], 8.0: [1, 2]})
        sched.failures_due(5.0)
        fired = sched.fired_times()

        restored = NodeFailureSchedule(at={5.0: [1], 8.0: [1, 2]})
        restored.restore_fired(fired)
        # Node 1 already died before the checkpoint: the restored
        # schedule must not re-announce it at its second listing.
        assert restored.failures_due(8.0) == [2]

    def test_empty_schedule(self):
        sched = NodeFailureSchedule()
        assert sched.failures_due(100.0) == []
        assert sched.fired_times() == []
