"""Tests for the mobile-simulation round loop."""

import numpy as np
import pytest

from repro.core.cma import CMAParams
from repro.core.problem import OSTDProblem
from repro.fields.greenorbs import GreenOrbsLightField
from repro.obs import Instrumentation, use_instrumentation
from repro.sim.engine import MobileSimulation, SimulationResult
from repro.sim.failures import MessageLossModel, NodeFailureSchedule
from repro.sim.recorders import (
    ConnectivityRecorder,
    DeltaRecorder,
    TrajectoryRecorder,
)
from repro.sim.sensing import TraceSampler


def make_problem(k=25, duration=4.0, side=50.0, seed=7):
    field = GreenOrbsLightField(side=side, seed=seed, freeze_sun_at=600.0)
    return OSTDProblem(
        k=k, rc=10.0, rs=5.0, region=field.region, field=field,
        speed=1.0, t0=600.0, duration=duration,
    )


def make_sim(problem=None, **kwargs):
    problem = problem or make_problem()
    kwargs.setdefault("resolution", 51)
    return MobileSimulation(problem, **kwargs)


class TestSetup:
    def test_default_grid_init_with_slack(self):
        sim = make_sim()
        pts = sim.positions
        assert pts.shape == (25, 2)
        # 10% shrink: outermost lattice points pulled toward the centre.
        assert pts[:, 0].min() > 0.0
        assert pts[:, 0].max() < 50.0

    def test_custom_init_size_checked(self):
        with pytest.raises(ValueError):
            make_sim(initial_positions=np.zeros((3, 2)))

    def test_params_radii_must_match(self):
        with pytest.raises(ValueError):
            make_sim(params=CMAParams(rc=99.0, rs=5.0))


class TestRounds:
    def test_time_advances(self):
        sim = make_sim()
        r0 = sim.step()
        r1 = sim.step()
        assert r0.t == 600.0
        assert r1.t == 601.0
        assert r1.round_index == 1

    def test_run_collects_all_rounds(self):
        result = make_sim().run()
        assert len(result.rounds) == 4
        assert result.times.tolist() == [600.0, 601.0, 602.0, 603.0]
        assert result.deltas.shape == (4,)
        assert result.final_positions.shape == (25, 2)

    def test_run_validation(self):
        with pytest.raises(ValueError):
            make_sim().run(n_rounds=0)

    def test_deterministic(self):
        a = make_sim().run()
        b = make_sim().run()
        assert np.allclose(a.deltas, b.deltas)
        assert np.allclose(a.final_positions, b.final_positions)

    def test_speed_cap_per_round(self):
        problem = make_problem(duration=3.0)
        sim = make_sim(problem)
        prev = sim.positions.copy()
        rec = sim.step()
        moved = np.linalg.norm(sim.positions - prev, axis=1)
        # CMA step is capped at v*dt; LCM followers can add up to about the
        # same again, so 2x is a safe envelope.
        assert (moved <= 2.0 * problem.speed * problem.dt + 1e-6).all()

    def test_positions_stay_in_region(self):
        result = make_sim().run()
        for record in result.rounds:
            assert (record.positions >= 0.0).all()
            assert (record.positions <= 50.0).all()


class TestConnectivity:
    def test_stays_connected(self):
        result = make_sim().run()
        assert result.always_connected

    def test_components_tracked(self):
        result = make_sim().run()
        assert all(r.n_components >= 1 for r in result.rounds)


class TestFailures:
    def test_node_death_reduces_alive(self):
        schedule = NodeFailureSchedule(at={601.0: [0, 1, 2]})
        sim = make_sim(failure_schedule=schedule)
        r0 = sim.step()
        assert r0.n_alive == 25
        r1 = sim.step()
        assert r1.n_alive == 22

    def test_message_loss_still_runs(self):
        sim = make_sim(message_loss=MessageLossModel(0.3, seed=1))
        result = sim.run()
        assert len(result.rounds) == 4
        assert np.isfinite(result.deltas).all()


class TestTraceSampling:
    def test_trace_sample_count_recorded(self):
        sim = make_sim(trace_sampler=TraceSampler(samples_per_move=2))
        record = sim.step()
        # Each node that actually travelled contributes 2 path samples
        # (plan-movers may be clipped to zero; LCM followers add paths).
        assert record.n_trace_samples > 0
        assert record.n_trace_samples % 2 == 0

    def test_extra_samples_help_or_match(self):
        base = make_sim().run()
        traced = make_sim(trace_sampler=TraceSampler(samples_per_move=3)).run()
        # Extra samples can only help the reconstruction on average.
        assert traced.deltas.mean() <= base.deltas.mean() * 1.02


class TestEnergyBudget:
    def test_nodes_die_when_budget_spent(self):
        sim = make_sim(make_problem(duration=6.0), energy_budget=1.5)
        result = sim.run()
        spent = [n.distance_travelled for n in sim.nodes]
        dead = [n for n in sim.nodes if not n.alive]
        # Whoever died must have spent at least the budget.
        for node in dead:
            assert node.distance_travelled >= 1.5
        # A tight budget kills at least the most active nodes in 6 rounds.
        assert max(spent) >= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_sim(energy_budget=0.0)

    def test_no_budget_no_deaths(self):
        sim = make_sim(make_problem(duration=4.0))
        sim.run()
        assert all(n.alive for n in sim.nodes)


class TestRecorders:
    def test_recorders_receive_rounds(self):
        delta_rec = DeltaRecorder()
        traj_rec = TrajectoryRecorder()
        conn_rec = ConnectivityRecorder()
        sim = make_sim(recorders=[delta_rec, traj_rec, conn_rec])
        result = sim.run()
        assert len(delta_rec.deltas) == 4
        assert np.allclose(delta_rec.series()[:, 1], result.deltas)
        assert len(traj_rec.positions) == 4
        assert conn_rec.always_connected == result.always_connected
        assert traj_rec.displacement().shape == (3,)


class TestDeadFleet:
    def test_fully_dead_fleet_is_not_connected(self):
        # Regression: a dead fleet used to report connected=True, so
        # always_connected claimed the run never partitioned.
        schedule = NodeFailureSchedule(at={600.0: list(range(25))})
        sim = make_sim(failure_schedule=schedule)
        record = sim.step()
        assert record.n_alive == 0
        assert record.connected is False
        assert record.n_components == 0
        assert np.isnan(record.delta)
        result = SimulationResult(rounds=[record])
        assert not result.always_connected

    def test_connectivity_recorder_sees_dead_fleet(self):
        schedule = NodeFailureSchedule(at={600.0: list(range(25))})
        conn_rec = ConnectivityRecorder()
        sim = make_sim(failure_schedule=schedule, recorders=[conn_rec])
        sim.step()
        assert conn_rec.always_connected is False


class TestInstrumentation:
    def test_step_emits_phase_spans_and_round_event(self):
        obs = Instrumentation.in_memory()
        sim = make_sim(obs=obs)
        record = sim.step()
        names = [e.name for e in obs.memory_events()]
        assert names.count("round") == 1
        spans = [e for e in obs.memory_events() if e.name == "span"]
        paths = {e.fields["path"] for e in spans}
        for phase in ("sense", "exchange", "plan", "constrain_move",
                      "lcm", "measure"):
            assert f"step/{phase}" in paths
        assert "step" in paths
        # Round event carries the record's measurements.
        (round_event,) = [e for e in obs.memory_events() if e.name == "round"]
        assert round_event.fields["delta"] == record.delta
        assert round_event.fields["n_moved"] == record.n_moved
        assert obs.metrics.counter("round.moves").value == record.n_moved

    def test_ambient_instrumentation_picked_up(self):
        obs = Instrumentation.in_memory()
        with use_instrumentation(obs):
            sim = make_sim()
        assert sim.obs is obs
        sim.step()
        assert any(e.name == "round" for e in obs.memory_events())

    def test_disabled_by_default_and_deterministic(self):
        sim = make_sim()
        assert sim.obs.enabled is False
        baseline = make_sim().run()
        instrumented = make_sim(obs=Instrumentation.in_memory()).run()
        assert np.allclose(baseline.deltas, instrumented.deltas)


class TestConvergence:
    def test_converged_after_none_for_short_runs(self):
        result = make_sim(make_problem(duration=2.0)).run()
        # Too short to conclude anything; just check the API contract.
        out = result.converged_after(10.0)  # huge tolerance: converged at once
        assert out is None or out >= 600.0

    @staticmethod
    def _result_from_moves(moves, t0=600.0):
        """Hand-built SimulationResult: one node moving `moves[i]` metres
        between rounds i and i+1, rounds stamped t0, t0+1, ..."""
        from repro.sim.engine import RoundRecord

        x = 0.0
        positions = [np.array([[x, 0.0]])]
        for d in moves:
            x += d
            positions.append(np.array([[x, 0.0]]))
        return SimulationResult(rounds=[
            RoundRecord(
                round_index=i, t=t0 + i, positions=p, delta=0.0, rmse=0.0,
                connected=True, n_components=1, n_alive=1, n_moved=0,
                n_lcm_moves=0, mean_force=0.0,
            )
            for i, p in enumerate(positions)
        ])

    def test_converged_after_hand_built(self):
        # Settles after the move between rounds 1 and 2 (the last move
        # above tolerance): converged from round 2's *end*, i.e. t=602...
        # pinned exactly: the round after the last over-tolerance move
        # completes is rounds[3] (t=603).
        result = self._result_from_moves([1.0, 0.8, 0.02, 0.03, 0.01])
        assert result.converged_after(0.05) == 603.0

    def test_converged_after_immediately(self):
        # Every move under tolerance: converged from the first recorded
        # post-move round.
        result = self._result_from_moves([0.01, 0.02, 0.01])
        assert result.converged_after(0.05) == 601.0

    def test_converged_after_never(self):
        # The final move is still above tolerance: no settling claim.
        result = self._result_from_moves([0.01, 0.01, 1.0])
        assert result.converged_after(0.05) is None

    def test_converged_after_too_few_rounds(self):
        assert self._result_from_moves([]).converged_after(0.05) is None
        assert SimulationResult(rounds=[]).converged_after(0.05) is None

    def test_converged_after_matches_forward_reference(self):
        # Property: the single reverse pass equals the quadratic forward
        # definition "first round from which every later move is under
        # tolerance" on random trajectories.
        rng = np.random.default_rng(42)
        for _ in range(50):
            n_moves = int(rng.integers(1, 12))
            moves = rng.choice([0.0, 0.02, 0.04, 0.06, 0.5], size=n_moves)
            result = self._result_from_moves(list(moves))
            tol = 0.05
            expect = None
            for i in range(1, len(result.rounds)):
                if all(m <= tol for m in moves[i - 1:]):
                    expect = result.rounds[i].t
                    break
            assert result.converged_after(tol) == expect, list(moves)
