"""Tests for the disk sensing model and trace sampler."""

import numpy as np
import pytest

from repro.fields.analytic import PlaneField
from repro.fields.base import sample_grid
from repro.fields.dynamic import StaticAsDynamic
from repro.geometry.primitives import BoundingBox
from repro.sim.sensing import DiskSensor, TraceSampler


@pytest.fixture
def snapshot(bump_field):
    return sample_grid(bump_field, BoundingBox.square(100.0), 101)


class TestDiskSensor:
    def test_sample_count_matches_paper(self, snapshot):
        """m = floor(pi * Rs^2) on the 1 m grid (within grid quantisation)."""
        sensor = DiskSensor(snapshot, rs=5.0)
        reading = sensor.read(np.array([50.0, 50.0]))
        assert abs(reading.m - int(np.pi * 25)) <= 5

    def test_all_samples_in_disk(self, snapshot):
        sensor = DiskSensor(snapshot, rs=5.0)
        center = np.array([30.0, 60.0])
        reading = sensor.read(center)
        dists = np.linalg.norm(reading.positions - center, axis=1)
        assert (dists <= 5.0 + 1e-9).all()

    def test_values_match_snapshot(self, snapshot, bump_field):
        sensor = DiskSensor(snapshot, rs=3.0)
        reading = sensor.read(np.array([40.0, 40.0]))
        expected = bump_field(reading.positions[:, 0], reading.positions[:, 1])
        assert np.allclose(reading.values, expected, atol=1e-9)

    def test_corner_clipping(self, snapshot):
        sensor = DiskSensor(snapshot, rs=5.0)
        reading = sensor.read(np.array([0.0, 0.0]))
        assert 0 < reading.m < int(np.pi * 25)

    def test_outside_region_empty(self, snapshot):
        sensor = DiskSensor(snapshot, rs=2.0)
        reading = sensor.read(np.array([500.0, 500.0]))
        assert reading.m == 0

    def test_curvature_peaks_near_bump(self, snapshot, bump_field):
        sensor = DiskSensor(snapshot, rs=5.0)
        bump = bump_field.bumps[0]
        at_bump = sensor.read(np.array([bump.cx, bump.cy]))
        far = sensor.read(np.array([5.0, 95.0]))
        assert at_bump.curvatures.max() > 5.0 * max(far.curvatures.max(), 1e-12)

    def test_smoothing_reduces_noise_curvature(self, rng):
        noisy = rng.normal(size=(101, 101)) * 0.5
        gs = sample_grid(
            PlaneField(), BoundingBox.square(100.0), 101
        )
        from repro.fields.base import GridSample

        noisy_gs = GridSample(xs=gs.xs, ys=gs.ys, values=noisy)
        raw = DiskSensor(noisy_gs, rs=5.0, smooth_sigma=0.0)
        smooth = DiskSensor(noisy_gs, rs=5.0, smooth_sigma=2.0)
        p = np.array([50.0, 50.0])
        assert smooth.read(p).curvatures.mean() < raw.read(p).curvatures.mean()

    def test_validation(self, snapshot):
        with pytest.raises(ValueError):
            DiskSensor(snapshot, rs=0.0)
        with pytest.raises(ValueError):
            DiskSensor(snapshot, rs=5.0, smooth_sigma=-1.0)

    def test_signed_mode(self, snapshot):
        unsigned = DiskSensor(snapshot, rs=5.0, signed=False)
        reading = unsigned.read(np.array([50.0, 50.0]))
        assert (reading.curvatures >= 0).all()


class TestSensorNoise:
    def test_noise_perturbs_values(self, snapshot):
        import numpy as np

        clean = DiskSensor(snapshot, rs=5.0).read(np.array([50.0, 50.0]))
        noisy = DiskSensor(
            snapshot, rs=5.0, noise_std=0.5,
            noise_rng=np.random.default_rng(0),
        ).read(np.array([50.0, 50.0]))
        diff = noisy.values - clean.values
        assert 0.3 < float(np.std(diff)) < 0.7

    def test_noise_requires_rng(self, snapshot):
        import numpy as np

        # Without an RNG the noise setting is inert (engine always passes one).
        sensor = DiskSensor(snapshot, rs=5.0, noise_std=0.5, noise_rng=None)
        clean = DiskSensor(snapshot, rs=5.0).read(np.array([50.0, 50.0]))
        out = sensor.read(np.array([50.0, 50.0]))
        assert np.allclose(out.values, clean.values)

    def test_noise_validation(self, snapshot):
        with pytest.raises(ValueError):
            DiskSensor(snapshot, rs=5.0, noise_std=-0.1)

    def test_engine_noise_option(self):
        import numpy as np

        from repro.core.problem import OSTDProblem
        from repro.fields.greenorbs import GreenOrbsLightField
        from repro.sim.engine import MobileSimulation

        field = GreenOrbsLightField(side=40.0, seed=1, freeze_sun_at=600.0)
        problem = OSTDProblem(
            k=16, rc=10.0, rs=5.0, region=field.region, field=field,
            speed=1.0, t0=600.0, duration=2.0,
        )
        clean = MobileSimulation(problem, resolution=41).run()
        noisy = MobileSimulation(
            problem, resolution=41, sensor_noise_std=0.5
        ).run()
        assert not np.allclose(clean.final_positions, noisy.final_positions)
        with pytest.raises(ValueError):
            MobileSimulation(problem, resolution=41, sensor_noise_std=-1.0)


class TestTraceSampler:
    def test_sample_count(self):
        sampler = TraceSampler(samples_per_move=3)
        field = StaticAsDynamic(PlaneField(a=1.0))
        pts, vals = sampler.sample_path(
            field, np.array([0.0, 0.0]), np.array([4.0, 0.0]), t=0.0
        )
        assert len(pts) == 3
        assert np.allclose(pts[:, 0], [1.0, 2.0, 3.0])
        assert np.allclose(vals, [1.0, 2.0, 3.0])

    def test_no_move_no_samples(self):
        sampler = TraceSampler()
        field = StaticAsDynamic(PlaneField())
        pts, vals = sampler.sample_path(
            field, np.array([1.0, 1.0]), np.array([1.0, 1.0]), t=0.0
        )
        assert len(pts) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSampler(samples_per_move=0)


class TestBatchedReads:
    """read_many is the engine's fast path; read is its oracle."""

    def _assert_batch_matches(self, sensor_kwargs, snapshot, positions):
        batch = DiskSensor(snapshot, **sensor_kwargs).read_many(positions)
        reference = [
            DiskSensor(snapshot, **sensor_kwargs).read(p) for p in positions
        ]
        assert len(batch) == len(reference)
        for got, want in zip(batch, reference):
            assert np.array_equal(got.positions, want.positions)
            assert np.array_equal(got.values, want.values)
            assert np.array_equal(got.curvatures, want.curvatures)

    def test_bitwise_vs_sequential_reads(self, snapshot):
        rng = np.random.default_rng(42)
        positions = list(rng.uniform(0.0, 100.0, size=(60, 2)))
        # Edge/corner windows get clipped to non-square shapes, and
        # on-grid-line centres flip the window between 10 and 11 cells.
        positions += [
            np.array([0.0, 0.0]),
            np.array([100.0, 100.0]),
            np.array([0.5, 99.5]),
            np.array([50.0, 50.0]),
            np.array([2.0, 3.0]),
        ]
        for kwargs in (
            {"rs": 5.0},
            {"rs": 2.5},
            {"rs": 5.0, "signed": True},
            {"rs": 5.0, "smooth_sigma": 0.0},
            {"rs": 5.0, "smooth_sigma": 3.0},
        ):
            self._assert_batch_matches(kwargs, snapshot, positions)

    def test_degenerate_windows_fall_back(self, snapshot):
        # rs smaller than half the grid pitch: windows thinner than the
        # 2-cell curvature stencil, served by the scalar fallback.
        sensor = DiskSensor(snapshot, rs=0.4)
        positions = [np.array([50.5, 50.5]), np.array([50.0, 50.0])]
        batch = sensor.read_many(positions)
        for got, want in zip(batch, [sensor.read(p) for p in positions]):
            assert np.array_equal(got.values, want.values)
            assert np.array_equal(got.curvatures, want.curvatures)

    def test_noisy_path_preserves_rng_order(self, snapshot):
        positions = [np.array([30.0, 30.0]), np.array([60.0, 60.0])]
        a = DiskSensor(
            snapshot, rs=5.0, noise_std=0.5,
            noise_rng=np.random.default_rng(7),
        ).read_many(positions)
        b_sensor = DiskSensor(
            snapshot, rs=5.0, noise_std=0.5,
            noise_rng=np.random.default_rng(7),
        )
        b = [b_sensor.read(p) for p in positions]
        for got, want in zip(a, b):
            assert np.array_equal(got.values, want.values)
            assert np.array_equal(got.curvatures, want.curvatures)
