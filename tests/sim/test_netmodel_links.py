"""Property-based tests for the link-loss models.

The link models carry the netmodel's determinism contract: every model
is a pure function of (seed, call sequence), a zero-loss configuration
consumes no RNG draws, and the complete mutable state survives a JSON
round-trip — the exact path checkpoint aux data takes through
``np.savez``. Hypothesis drives the call sequences so the properties
hold for arbitrary interleavings, not just the ones the engine happens
to produce today.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.sim.netmodel import (
    BernoulliLink,
    DistanceLossLink,
    GilbertElliottLink,
    LinkModel,
    PerfectLink,
)

# One delivery attempt: (sender, receiver, distance).
attempts = st.tuples(
    st.integers(0, 5), st.integers(0, 5), st.floats(0.0, 10.0)
)


def make_models(seed):
    """One instance of every stochastic link model, same seed."""
    return [
        BernoulliLink(0.3, seed=seed),
        DistanceLossLink(rc=10.0, edge_loss=0.6, seed=seed),
        GilbertElliottLink(p_fail=0.2, p_recover=0.4, seed=seed),
    ]


class TestProtocol:
    def test_every_model_satisfies_link_model(self):
        for model in [PerfectLink(), *make_models(0)]:
            assert isinstance(model, LinkModel)


class TestSeedDeterminism:
    @given(seed=st.integers(0, 2**32 - 1), calls=st.lists(attempts, max_size=40))
    def test_same_seed_same_outcomes(self, seed, calls):
        for a, b in zip(make_models(seed), make_models(seed)):
            assert [a.delivered(*c) for c in calls] == [
                b.delivered(*c) for c in calls
            ]

    @given(calls=st.lists(attempts, min_size=1, max_size=40))
    def test_state_dict_round_trips_through_json(self, calls):
        """Replay from a JSON-serialized state matches the original stream."""
        for reference, restored in zip(make_models(7), make_models(7)):
            # Advance the reference, snapshot, push the snapshot through
            # the same JSON round-trip the checkpoint writer uses.
            for c in calls:
                reference.delivered(*c)
            state = json.loads(json.dumps(reference.state_dict()))
            restored.load_state_dict(state)
            assert [reference.delivered(*c) for c in calls] == [
                restored.delivered(*c) for c in calls
            ]


class TestZeroLossDeliversEverything:
    @given(calls=st.lists(attempts, max_size=60))
    def test_zero_probability_models(self, calls):
        for model in (
            PerfectLink(),
            BernoulliLink(0.0, seed=1),
            DistanceLossLink(rc=10.0, edge_loss=0.0, floor=0.0, seed=1),
            GilbertElliottLink(loss_good=0.0, loss_bad=0.0, seed=1),
        ):
            assert all(model.delivered(*c) for c in calls)

    @given(calls=st.lists(attempts, max_size=60))
    def test_zero_loss_consumes_no_rng_draws(self, calls):
        """Disabled loss must be bit-identical to no model at all."""
        model = BernoulliLink(0.0, seed=9)
        before = json.dumps(model.state_dict(), sort_keys=True, default=str)
        for c in calls:
            model.delivered(*c)
        after = json.dumps(model.state_dict(), sort_keys=True, default=str)
        assert before == after


class TestDistanceLoss:
    def test_loss_monotone_in_distance(self):
        model = DistanceLossLink(rc=10.0, edge_loss=0.6, floor=0.05)
        ds = [0.0, 2.5, 5.0, 7.5, 10.0]
        losses = [model.loss_at(d) for d in ds]
        assert losses == sorted(losses)
        assert losses[0] == pytest.approx(0.05)
        assert losses[-1] == pytest.approx(0.6)

    def test_loss_clipped_beyond_rc(self):
        model = DistanceLossLink(rc=10.0, edge_loss=0.6)
        assert model.loss_at(25.0) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceLossLink(rc=0.0)
        with pytest.raises(ValueError):
            DistanceLossLink(rc=10.0, edge_loss=1.0)
        with pytest.raises(ValueError):
            DistanceLossLink(rc=10.0, edge_loss=0.2, floor=0.3)


class TestGilbertElliott:
    def test_mean_loss_matches_stationary_rate(self):
        model = GilbertElliottLink(
            p_fail=0.1, p_recover=0.3, loss_good=0.0, loss_bad=0.9, seed=0
        )
        n = 40_000
        lost = sum(not model.delivered(0, 1) for _ in range(n))
        assert lost / n == pytest.approx(model.mean_loss(), abs=0.02)

    def test_losses_cluster_into_bursts(self):
        """Consecutive losses exceed what i.i.d. loss at the same rate gives."""
        model = GilbertElliottLink(
            p_fail=0.05, p_recover=0.2, loss_good=0.0, loss_bad=1.0, seed=2
        )
        outcomes = [model.delivered(0, 1) for _ in range(20_000)]
        loss_rate = 1.0 - sum(outcomes) / len(outcomes)
        both_lost = sum(
            (not a) and (not b) for a, b in zip(outcomes, outcomes[1:])
        ) / (len(outcomes) - 1)
        # Memoryless loss would give P(two in a row) == rate^2; the
        # Markov channel correlates consecutive slots far above that.
        assert both_lost > 2.0 * loss_rate**2

    def test_links_have_independent_state(self):
        model = GilbertElliottLink(
            p_fail=1.0, p_recover=0.0, loss_good=0.0, loss_bad=1.0, seed=0
        )
        # Drive link (0, 1) into its (absorbing) bad state.
        assert model.delivered(0, 1)
        assert not model.delivered(0, 1)
        # A different directed link still starts good.
        assert model.delivered(1, 0)
        assert model.delivered(0, 2)

    def test_advance_slot_lets_bursts_end(self):
        model = GilbertElliottLink(
            p_fail=1.0, p_recover=1.0, loss_good=0.0, loss_bad=1.0, seed=0
        )
        assert model.delivered(0, 1)       # good -> transitions to bad
        model.advance_slot(0, 1)           # bad -> recovers (p_recover=1)
        assert model.delivered(0, 1)

    def test_bad_state_survives_json_round_trip(self):
        model = GilbertElliottLink(
            p_fail=1.0, p_recover=0.0, loss_bad=1.0, seed=0
        )
        model.delivered(0, 1)              # leaves link (0, 1) bad
        state = json.loads(json.dumps(model.state_dict()))
        fresh = GilbertElliottLink(
            p_fail=1.0, p_recover=0.0, loss_bad=1.0, seed=0
        )
        fresh.load_state_dict(state)
        assert not fresh.delivered(0, 1)   # still in the burst
