"""Property-based and differential tests for ``Radio.neighbor_ids``.

The unit-disk neighbourhood is the foundation everything above it trusts
(exchange, LCM, the netmodel pipeline). Hypothesis checks its algebraic
invariants on arbitrary point sets; networkx's geometric-graph builder
provides an independent implementation to differential-test against,
including the boundary case of two nodes at *exactly* distance Rc.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

import repro.sim.radio as radio_module
from repro.sim.radio import Radio

RC = 5.0

# Integer coordinates keep pairwise distances exactly representable, so
# the boundary predicate (dist <= Rc) is unambiguous — e.g. (0,0)-(3,4)
# sits exactly on the disk edge.
int_points = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=1,
    max_size=14,
)
float_points = st.lists(
    st.tuples(
        st.floats(0.0, 30.0, allow_nan=False),
        st.floats(0.0, 30.0, allow_nan=False),
    ),
    min_size=1,
    max_size=14,
)


def neighbor_sets(points, alive=None):
    ids = Radio(RC).neighbor_ids(np.asarray(points, dtype=float), alive=alive)
    return [set(nbrs) for nbrs in ids]


class TestInvariants:
    @given(points=float_points)
    def test_symmetry(self, points):
        sets = neighbor_sets(points)
        for i, nbrs in enumerate(sets):
            for j in nbrs:
                assert i in sets[j]

    @given(points=float_points)
    def test_self_exclusion(self, points):
        for i, nbrs in enumerate(neighbor_sets(points)):
            assert i not in nbrs

    @given(points=float_points, data=st.data())
    def test_dead_nodes_never_appear(self, points, data):
        alive = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=len(points),
                    max_size=len(points),
                )
            )
        )
        sets = neighbor_sets(points, alive=alive)
        dead = {i for i, a in enumerate(alive) if not a}
        for i, nbrs in enumerate(sets):
            assert not (nbrs & dead)
            if i in dead:
                assert nbrs == set()

    @given(points=float_points)
    def test_killing_a_node_only_removes_it(self, points):
        """Masking node 0 dead removes exactly node 0 from the graph."""
        full = neighbor_sets(points)
        alive = np.ones(len(points), dtype=bool)
        alive[0] = False
        masked = neighbor_sets(points, alive=alive)
        assert masked[0] == set()
        for i in range(1, len(points)):
            assert masked[i] == full[i] - {0}


class TestNetworkxDifferential:
    nx = pytest.importorskip("networkx")

    def unit_disk_graph(self, points):
        """Independent unit-disk adjacency: edge iff distance <= Rc."""
        g = self.nx.Graph()
        g.add_nodes_from(range(len(points)))
        pts = np.asarray(points, dtype=float)
        g.add_edges_from(
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if float(np.hypot(*(pts[i] - pts[j]))) <= RC
        )
        return g

    @given(points=int_points)
    def test_matches_networkx_adjacency(self, points):
        g = self.unit_disk_graph(points)
        for i, nbrs in enumerate(neighbor_sets(points)):
            assert nbrs == set(g.neighbors(i))

    @given(points=float_points)
    def test_matches_on_float_positions(self, points):
        g = self.unit_disk_graph(points)
        for i, nbrs in enumerate(neighbor_sets(points)):
            assert nbrs == set(g.neighbors(i))

    def test_exactly_at_rc_is_a_neighbor(self):
        """(0,0)-(3,4) is at distance exactly 5 = Rc: in range, both ways."""
        points = [(0.0, 0.0), (3.0, 4.0)]
        assert neighbor_sets(points) == [{1}, {0}]
        g = self.unit_disk_graph(points)
        assert set(g.neighbors(0)) == {1}

    def test_just_past_rc_is_not(self):
        points = [(0.0, 0.0), (3.0, 4.0 + 1e-9)]
        assert neighbor_sets(points) == [set(), set()]

    def test_random_geometric_graph_agrees(self):
        """Cross-check against networkx's own geometric-graph builder."""
        rng = np.random.default_rng(42)
        pts = rng.uniform(0, 20, size=(25, 2))
        pos = {i: tuple(p) for i, p in enumerate(pts)}
        g = self.nx.random_geometric_graph(25, RC, pos=pos)
        for i, nbrs in enumerate(neighbor_sets(pts)):
            assert nbrs == set(g.neighbors(i))

    def test_grid_path_agrees_with_networkx(self):
        """Above DENSE_CROSSOVER, neighbor_ids routes through the cell
        grid — differential it against networkx at fleet scale."""
        rng = np.random.default_rng(9)
        n = 120  # > DENSE_CROSSOVER
        pts = rng.uniform(0, 40, size=(n, 2))
        pos = {i: tuple(p) for i, p in enumerate(pts)}
        g = self.nx.random_geometric_graph(n, RC, pos=pos)
        for i, nbrs in enumerate(neighbor_sets(pts)):
            assert nbrs == set(g.neighbors(i))


class TestGridVsDensePath:
    """The two neighbor_ids implementations must agree bit for bit.

    The hypothesis tests patch the crossover directly (function-scoped
    fixtures don't mix with ``@given``) and restore it in ``finally``.
    """

    def both_paths(self, points, alive=None):
        pts = np.asarray(points, dtype=float)
        original = radio_module.DENSE_CROSSOVER
        try:
            radio_module.DENSE_CROSSOVER = 10**9
            dense = Radio(RC).neighbor_ids(pts, alive=alive)
            radio_module.DENSE_CROSSOVER = 0
            grid = Radio(RC).neighbor_ids(pts, alive=alive)
        finally:
            radio_module.DENSE_CROSSOVER = original
        return dense, grid

    @given(points=float_points)
    def test_float_positions(self, points):
        dense, grid = self.both_paths(points)
        assert dense == grid

    @given(points=int_points, data=st.data())
    def test_exact_boundary_with_dead_nodes(self, points, data):
        alive = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=len(points),
                    max_size=len(points),
                )
            )
        )
        dense, grid = self.both_paths(points, alive=alive)
        assert dense == grid

    def test_fleet_scale(self):
        rng = np.random.default_rng(13)
        pts = rng.uniform(0, 60, size=(400, 2))
        dense, grid = self.both_paths(pts)
        assert dense == grid
