"""Tests for the tell-message structure."""

import numpy as np

from repro.core.cma import NeighborObservation
from repro.sim.messages import TellMessage


def make_tell():
    table = [
        NeighborObservation(3, np.array([1.0, 2.0]), 0.5),
        NeighborObservation(7, np.array([4.0, 5.0]), 1.5),
    ]
    return TellMessage(
        sender_id=1, destination=np.array([0.0, 0.0]), neighbor_table=table
    )


class TestTellMessage:
    def test_bridge_positions(self):
        tell = make_tell()
        bridges = tell.bridge_positions()
        assert len(bridges) == 2
        assert np.allclose(bridges[0], [1.0, 2.0])
        assert np.allclose(bridges[1], [4.0, 5.0])

    def test_index_of(self):
        tell = make_tell()
        assert tell.index_of(3) == 0
        assert tell.index_of(7) == 1
        assert tell.index_of(99) is None

    def test_empty_table(self):
        tell = TellMessage(
            sender_id=0, destination=np.zeros(2), neighbor_table=[]
        )
        assert tell.bridge_positions() == []
        assert tell.index_of(0) is None
