"""Tests for per-node state."""

import numpy as np

from repro.sim.node import NodeState


class TestNodeState:
    def test_move_accumulates_distance(self):
        node = NodeState(node_id=0, position=np.array([0.0, 0.0]))
        step = node.move_to(np.array([3.0, 4.0]))
        assert step == 5.0
        node.move_to(np.array([3.0, 10.0]))
        assert node.distance_travelled == 11.0

    def test_kill_idempotent(self):
        node = NodeState(node_id=1, position=np.zeros(2))
        node.kill(5.0)
        node.kill(9.0)
        assert not node.alive
        assert node.died_at == 5.0

    def test_position_coerced(self):
        node = NodeState(node_id=0, position=[1, 2])
        assert node.position.dtype == float
        assert node.position.shape == (2,)
