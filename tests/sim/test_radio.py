"""Tests for the unit-disk radio and beacon exchange."""

import numpy as np
import pytest

from repro.sim.failures import MessageLossModel
from repro.sim.radio import Radio


class TestNeighborDiscovery:
    def test_basic(self):
        radio = Radio(10.0)
        pts = np.array([[0, 0], [5, 0], [50, 50]], dtype=float)
        ids = radio.neighbor_ids(pts)
        assert ids[0] == [1]
        assert ids[1] == [0]
        assert ids[2] == []

    def test_dead_nodes_invisible(self):
        radio = Radio(10.0)
        pts = np.array([[0, 0], [5, 0], [8, 0]], dtype=float)
        alive = np.array([True, False, True])
        ids = radio.neighbor_ids(pts, alive=alive)
        assert ids[0] == [2]
        assert ids[1] == []  # dead node hears nothing
        assert ids[2] == [0]

    def test_empty(self):
        assert Radio(5.0).neighbor_ids(np.empty((0, 2))) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Radio(0.0)


class TestExchange:
    def test_observations_carry_state(self):
        radio = Radio(10.0)
        pts = np.array([[0, 0], [5, 0]], dtype=float)
        inboxes = radio.exchange(pts, [1.5, 2.5])
        assert len(inboxes[0]) == 1
        obs = inboxes[0][0]
        assert obs.node_id == 1
        assert np.allclose(obs.position, [5, 0])
        assert obs.curvature == 2.5

    def test_positions_are_copies(self):
        radio = Radio(10.0)
        pts = np.array([[0, 0], [5, 0]], dtype=float)
        inboxes = radio.exchange(pts, [0.0, 0.0])
        inboxes[0][0].position[0] = 999.0
        assert pts[1, 0] == 5.0

    def test_total_loss_silences_network(self):
        class AlwaysLost(MessageLossModel):
            def __init__(self):
                super().__init__(0.5)

            def delivered(self):
                return False

        radio = Radio(10.0, loss=AlwaysLost())
        pts = np.array([[0, 0], [5, 0]], dtype=float)
        inboxes = radio.exchange(pts, [0.0, 0.0])
        assert all(len(inbox) == 0 for inbox in inboxes)

    def test_loss_rate_statistics(self):
        radio = Radio(10.0, loss=MessageLossModel(0.3, seed=0))
        pts = np.array([[0, 0], [5, 0], [5, 5], [0, 5]], dtype=float)
        received = 0
        total = 0
        for _ in range(200):
            inboxes = radio.exchange(pts, [0.0] * 4)
            received += sum(len(i) for i in inboxes)
            total += 12  # 4 nodes x 3 neighbours
        rate = received / total
        assert 0.65 < rate < 0.75
