"""Unit tests for the round-loop recorders (no simulation needed)."""

import numpy as np

from repro.obs import Instrumentation
from repro.sim.engine import RoundRecord
from repro.sim.recorders import (
    ConnectivityRecorder,
    DeltaRecorder,
    ForceRecorder,
    MetricsRecorder,
    TrajectoryRecorder,
    record_round,
)


def make_record(i, positions=None, **overrides):
    fields = dict(
        round_index=i,
        t=600.0 + i,
        positions=(
            positions
            if positions is not None
            else np.full((3, 2), float(i))
        ),
        delta=100.0 - i,
        rmse=1.0,
        connected=True,
        n_components=1,
        n_alive=3,
        n_moved=2,
        n_lcm_moves=1,
        mean_force=0.5 * i,
        n_trace_samples=0,
    )
    fields.update(overrides)
    return RoundRecord(**fields)


class TestDeltaRecorder:
    def test_series_shape_and_values(self):
        rec = DeltaRecorder()
        for i in range(3):
            rec.on_round(make_record(i))
        series = rec.series()
        assert series.shape == (3, 2)
        assert series[:, 0].tolist() == [600.0, 601.0, 602.0]
        assert series[:, 1].tolist() == [100.0, 99.0, 98.0]

    def test_empty_series(self):
        assert DeltaRecorder().series().shape == (0, 2)


class TestForceRecorder:
    def test_collects_mean_force_per_round(self):
        rec = ForceRecorder()
        for i in range(4):
            rec.on_round(make_record(i))
        assert rec.times == [600.0, 601.0, 602.0, 603.0]
        assert rec.mean_force == [0.0, 0.5, 1.0, 1.5]

    def test_empty(self):
        rec = ForceRecorder()
        assert rec.times == [] and rec.mean_force == []


class TestConnectivityRecorder:
    def test_always_connected_true(self):
        rec = ConnectivityRecorder()
        for i in range(3):
            rec.on_round(make_record(i))
        assert rec.always_connected is True
        assert rec.n_components == [1, 1, 1]

    def test_always_connected_false_after_partition(self):
        rec = ConnectivityRecorder()
        rec.on_round(make_record(0))
        rec.on_round(make_record(1, connected=False, n_components=2))
        rec.on_round(make_record(2))
        assert rec.always_connected is False
        assert rec.n_components == [1, 2, 1]

    def test_vacuously_connected_when_empty(self):
        assert ConnectivityRecorder().always_connected is True


class TestTrajectoryRecorder:
    def test_displacement_per_round(self):
        rec = TrajectoryRecorder()
        # Every node moves by (1, 0) each round: mean displacement 1.0.
        for i in range(3):
            rec.on_round(make_record(i))
        moves = rec.displacement()
        assert moves.shape == (2,)
        assert np.allclose(moves, np.sqrt(2.0))

    def test_displacement_needs_two_rounds(self):
        rec = TrajectoryRecorder()
        assert rec.displacement().shape == (0,)
        rec.on_round(make_record(0))
        assert rec.displacement().shape == (0,)

    def test_positions_are_copies(self):
        rec = TrajectoryRecorder()
        record = make_record(0)
        rec.on_round(record)
        record.positions[:] = -1.0
        assert (rec.positions[0] == 0.0).all()


class TestMetricsRecorder:
    def test_bridges_rounds_onto_bus(self):
        obs = Instrumentation.in_memory()
        rec = MetricsRecorder(obs)
        for i in range(3):
            rec.on_round(make_record(i))
        rounds = [e for e in obs.memory_events() if e.name == "round"]
        assert len(rounds) == 3
        assert rounds[0].fields["delta"] == 100.0
        assert rounds[0].fields["sim_t"] == 600.0
        assert obs.metrics.counter("round.moves").value == 6
        assert obs.metrics.counter("round.lcm_moves").value == 3
        assert obs.metrics.summary("round.delta").count == 3

    def test_disabled_instrumentation_is_noop(self):
        obs = Instrumentation.disabled()
        rec = MetricsRecorder(obs)
        rec.on_round(make_record(0))
        assert obs.memory_events() == []
        assert len(obs.metrics) == 0

    def test_nan_delta_not_observed(self):
        obs = Instrumentation.in_memory()
        record_round(obs, make_record(0, delta=float("nan")))
        assert obs.metrics.summary("round.delta").count == 0
        # The event itself still carries the NaN round.
        assert len(obs.memory_events()) == 1
