"""Tests for ASCII rendering."""

import numpy as np
import pytest

from repro.fields.base import GridSample
from repro.geometry.primitives import BoundingBox
from repro.viz.ascii import (
    render_field,
    render_series,
    render_topology,
    render_triangulation,
)


def grid(values):
    values = np.asarray(values, dtype=float)
    return GridSample(
        xs=np.linspace(0, 10, values.shape[1]),
        ys=np.linspace(0, 10, values.shape[0]),
        values=values,
    )


class TestRenderField:
    def test_dimensions(self):
        out = render_field(grid(np.random.default_rng(0).normal(size=(20, 20))),
                           width=30, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_constant_field_uniform_chars(self):
        out = render_field(grid(np.full((5, 5), 3.0)), width=10, height=5)
        assert len(set(out.replace("\n", ""))) == 1

    def test_high_values_darker(self):
        values = np.zeros((10, 10))
        values[:, 5:] = 10.0
        out = render_field(grid(values), width=10, height=5)
        first_line = out.splitlines()[0]
        assert first_line[0] == " "
        assert first_line[-1] == "@"

    def test_origin_bottom_left(self):
        values = np.zeros((10, 10))
        values[0, 0] = 10.0  # y=0, x=0 -> bottom-left
        out = render_field(grid(values), width=10, height=5)
        assert out.splitlines()[-1][0] == "@"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_field(grid(np.zeros((3, 3))), width=1)


class TestRenderTopology:
    REGION = BoundingBox.square(10.0)

    def test_nodes_marked(self):
        out = render_topology(
            np.array([[5.0, 5.0]]), self.REGION, width=11, height=11
        )
        assert out.count("o") == 1

    def test_links_drawn(self):
        out = render_topology(
            np.array([[0.0, 5.0], [10.0, 5.0]]), self.REGION, rc=20.0,
            width=21, height=11,
        )
        assert "." in out
        assert out.count("o") == 2

    def test_no_links_without_rc(self):
        out = render_topology(
            np.array([[0.0, 5.0], [10.0, 5.0]]), self.REGION,
            width=21, height=11,
        )
        assert "." not in out


class TestRenderSeries:
    def test_marks_and_header(self):
        out = render_series([0, 1, 2], [5.0, 7.0, 6.0], width=20, height=5,
                            label="demo")
        assert out.startswith("demo")
        assert out.count("*") == 3

    def test_empty(self):
        assert render_series([], []) == "(empty series)"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [1.0])


class TestRenderTriangulation:
    REGION = BoundingBox.square(10.0)

    def test_vertices_and_edges(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 10.0]])
        tris = np.array([[0, 1, 2]])
        out = render_triangulation(pts, tris, self.REGION, width=21, height=11)
        assert out.count("o") == 3
        assert "." in out

    def test_empty_triangulation(self):
        pts = np.array([[5.0, 5.0]])
        out = render_triangulation(
            pts, np.empty((0, 3), dtype=int), self.REGION, width=11, height=5
        )
        assert out.count("o") == 1
        assert "." not in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_triangulation(
                np.zeros((1, 2)), np.empty((0, 3)), self.REGION, width=1
            )
