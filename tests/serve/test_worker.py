"""Job execution without HTTP: markers, execute_job, cancel→resume.

These tests drive :func:`repro.serve.worker.execute_job` in-process —
the same function the server's pool children run — so the preemption
and resume semantics are pinned independently of the network stack.
"""

import json
import threading
import time

from repro.serve.worker import (
    CANCEL_MARKER,
    cancel_pending,
    clear_cancel_marker,
    execute_job,
    make_interrupt,
    request_cancel_marker,
)


def _spec(runs_dir, job_id, **over):
    spec = {
        "job_id": job_id,
        "experiment_id": "fig8",
        "runs_dir": str(runs_dir),
        "fast": True,
        "checkpoint_every": 2,
        "obs_flush_every": 1,
        "round_delay_s": 0.0,
        "resume": False,
    }
    spec.update(over)
    return spec


class TestMarkers:
    def test_request_creates_and_clear_removes(self, tmp_path):
        run_dir = tmp_path / "r1"
        assert not cancel_pending(run_dir)
        marker = request_cancel_marker(run_dir)
        assert marker.name == CANCEL_MARKER
        assert cancel_pending(run_dir)
        assert clear_cancel_marker(run_dir) is True
        assert not cancel_pending(run_dir)
        assert clear_cancel_marker(run_dir) is False  # idempotent

    def test_make_interrupt_polls_the_marker(self, tmp_path):
        run_dir = tmp_path / "r1"
        interrupt = make_interrupt(run_dir)
        assert interrupt() is False
        request_cancel_marker(run_dir)
        assert interrupt() is True

    def test_make_interrupt_paces_rounds(self, tmp_path):
        interrupt = make_interrupt(tmp_path / "r1", round_delay_s=0.05)
        t0 = time.perf_counter()
        interrupt()
        assert time.perf_counter() - t0 >= 0.05


class TestExecuteJob:
    def test_complete_run_lands_in_the_registry(self, tmp_path):
        outcome = execute_job(_spec(tmp_path, "job-a"))
        assert outcome == {"job_id": "job-a", "status": "complete", "error": None}
        run_dir = tmp_path / "job-a"
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "complete"
        assert (run_dir / "obs.jsonl").exists()
        assert (run_dir / "result.json").exists()
        assert (run_dir / "checkpoints").is_dir()

    def test_unknown_experiment_fails_with_traceback(self, tmp_path):
        outcome = execute_job(_spec(tmp_path, "job-x", experiment_id="nope"))
        assert outcome["status"] == "failed"
        assert "nope" in outcome["error"]

    def test_stale_marker_does_not_kill_a_fresh_attempt(self, tmp_path):
        # A marker left over from a cancelled attempt is cleared on
        # entry — resume must not be instantly re-cancelled by it.
        run_dir = tmp_path / "job-b"
        request_cancel_marker(run_dir)
        outcome = execute_job(_spec(tmp_path, "job-b"))
        assert outcome["status"] == "complete"
        assert not cancel_pending(run_dir)

    def test_cancel_mid_run_then_resume_is_bit_identical(self, tmp_path):
        # the uninterrupted reference
        assert execute_job(_spec(tmp_path, "ref"))["status"] == "complete"
        reference = (tmp_path / "ref" / "result.json").read_bytes()

        # cancel mid-flight: rounds are paced, the marker lands while
        # the run is somewhere in the middle
        run_dir = tmp_path / "victim"
        timer = threading.Timer(
            0.35, lambda: request_cancel_marker(run_dir)
        )
        timer.start()
        try:
            outcome = execute_job(
                _spec(tmp_path, "victim", round_delay_s=0.15)
            )
        finally:
            timer.cancel()
        assert outcome["status"] == "cancelled"
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "cancelled"
        assert not cancel_pending(run_dir)  # consumed on the way out
        assert list((run_dir / "checkpoints").rglob("*.npz"))

        # resume from the newest checkpoint: one contiguous log, the
        # same result bytes as the run that was never touched
        outcome = execute_job(
            _spec(tmp_path, "victim", resume=True, round_delay_s=0.0)
        )
        assert outcome["status"] == "complete"
        assert (run_dir / "result.json").read_bytes() == reference
        log_lines = (run_dir / "obs.jsonl").read_text().splitlines()
        headers = [
            json.loads(l) for l in log_lines
            if json.loads(l).get("event") == "run_meta"
        ]
        assert len(headers) == 2  # original attempt + resumed segment
        assert headers[1].get("resumed") is True
