"""The stdlib HTTP/SSE micro-layer: request parsing and SSE framing."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    HttpRequest,
    read_request,
    sse_comment,
    sse_message,
)


def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_request_line_path_and_query(self):
        req = _parse(b"GET /jobs/j1/events?replay=1&speed=2.5 HTTP/1.1\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/jobs/j1/events"
        assert req.query == {"replay": "1", "speed": "2.5"}

    def test_headers_are_lowercased_and_trimmed(self):
        req = _parse(b"GET / HTTP/1.1\r\nX-Thing:  abc \r\nHost: h\r\n\r\n")
        assert req.headers["x-thing"] == "abc"
        assert req.headers["host"] == "h"

    def test_body_read_to_content_length(self):
        body = json.dumps({"experiment_id": "fig8"}).encode()
        req = _parse(
            b"POST /jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert req.json() == {"experiment_id": "fig8"}

    def test_percent_encoded_path_is_decoded(self):
        req = _parse(b"GET /jobs/fig8%2Dx HTTP/1.1\r\n\r\n")
        assert req.path == "/jobs/fig8-x"

    def test_clean_eof_yields_none(self):
        assert _parse(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"GET / HTT")
        assert err.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_refused(self):
        with pytest.raises(HttpError) as err:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        assert err.value.status == 400


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        assert HttpRequest("POST", "/jobs").json() == {}

    def test_invalid_json_is_400(self):
        with pytest.raises(HttpError) as err:
            HttpRequest("POST", "/jobs", body=b"{nope").json()
        assert err.value.status == 400

    def test_non_object_json_is_400(self):
        with pytest.raises(HttpError) as err:
            HttpRequest("POST", "/jobs", body=b"[1, 2]").json()
        assert err.value.status == 400


class TestSseFraming:
    def test_single_line_message_exact_bytes(self):
        # The framing contract the conformance suite leans on: the data
        # payload is emitted verbatim, one blank line terminates.
        line = '{"event": "round", "round": 0}'
        assert sse_message(line, event="round", id=7) == (
            b'event: round\nid: 7\ndata: {"event": "round", "round": 0}\n\n'
        )

    def test_multiline_data_becomes_stacked_data_fields(self):
        assert sse_message("a\nb") == b"data: a\ndata: b\n\n"

    def test_event_and_id_are_optional(self):
        assert sse_message("x") == b"data: x\n\n"

    def test_comment_keepalive(self):
        assert sse_comment() == b": keepalive\n\n"
        assert sse_comment("hi") == b": hi\n\n"

    def test_data_roundtrip_recovers_log_line(self):
        # client side: concatenating data payloads restores the log line
        line = json.dumps({"event": "round", "round": 3, "delta": 0.5})
        framed = sse_message(line, event="round", id=3).decode()
        data = "\n".join(
            f[len("data: "):]
            for f in framed.strip().split("\n")
            if f.startswith("data: ")
        )
        assert data == line
