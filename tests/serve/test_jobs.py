"""The job state machine: units, properties, restart recovery."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.obs.manifest import RunManifest
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    TRANSITIONS,
    InvalidTransition,
    JobRegistry,
)


class TestTransitionTable:
    def test_every_state_has_a_row(self):
        assert set(TRANSITIONS) == set(STATES)

    def test_terminal_states_have_no_automatic_exits(self):
        assert TRANSITIONS[DONE] == frozenset()
        # cancelled/failed re-enter the queue only via resume
        assert TRANSITIONS[FAILED] == {QUEUED}
        assert TRANSITIONS[CANCELLED] == {QUEUED}

    def test_terminal_set_matches_table(self):
        assert TERMINAL == {DONE, FAILED, CANCELLED}


class TestRegistryUnits:
    def test_happy_path_lifecycle(self):
        reg = JobRegistry()
        record = reg.submit("j1", "fig8", {"fast": True})
        assert record.state == QUEUED and record.attempts == 1
        reg.transition("j1", RUNNING)
        reg.transition("j1", DONE)
        assert reg.get("j1").state == DONE

    def test_duplicate_submit_rejected(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        with pytest.raises(ValueError, match="duplicate"):
            reg.submit("j1", "fig8")

    def test_illegal_edges_raise_and_leave_state_untouched(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        with pytest.raises(InvalidTransition):
            reg.transition("j1", DONE)  # queued -/-> done
        assert reg.get("j1").state == QUEUED
        reg.transition("j1", RUNNING)
        reg.transition("j1", DONE)
        with pytest.raises(InvalidTransition):
            reg.transition("j1", RUNNING)  # done is final
        assert reg.get("j1").state == DONE

    def test_unknown_state_and_unknown_job(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        with pytest.raises(InvalidTransition):
            reg.transition("j1", "paused")
        with pytest.raises(KeyError):
            reg.transition("ghost", RUNNING)
        with pytest.raises(KeyError):
            reg.get("ghost")
        assert reg.maybe_get("ghost") is None

    def test_failed_records_error(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        reg.transition("j1", RUNNING)
        reg.transition("j1", FAILED, error="boom")
        assert reg.get("j1").error == "boom"

    def test_cancel_queued_is_immediate(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        record = reg.request_cancel("j1")
        assert record.state == CANCELLED
        assert record.cancel_requested is False

    def test_cancel_running_is_two_phase(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        reg.transition("j1", RUNNING)
        record = reg.request_cancel("j1")
        # the worker confirms the edge later
        assert record.state == RUNNING
        assert record.cancel_requested is True
        reg.transition("j1", CANCELLED)
        assert reg.get("j1").state == CANCELLED

    def test_cancel_terminal_rejected(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        reg.transition("j1", RUNNING)
        reg.transition("j1", DONE)
        with pytest.raises(InvalidTransition):
            reg.request_cancel("j1")

    def test_resume_requeues_cancelled_and_failed(self):
        reg = JobRegistry()
        reg.submit("c", "fig8")
        reg.request_cancel("c")
        record = reg.resume("c")
        assert record.state == QUEUED and record.attempts == 2
        reg.submit("f", "fig8")
        reg.transition("f", RUNNING)
        reg.transition("f", FAILED, error="boom")
        record = reg.resume("f")
        assert record.state == QUEUED
        assert record.error is None  # a fresh attempt starts clean

    def test_resume_rejected_elsewhere(self):
        reg = JobRegistry()
        reg.submit("j1", "fig8")
        for state in (QUEUED,):
            with pytest.raises(InvalidTransition):
                reg.resume("j1")
        reg.transition("j1", RUNNING)
        with pytest.raises(InvalidTransition):
            reg.resume("j1")
        reg.transition("j1", DONE)
        with pytest.raises(InvalidTransition):
            reg.resume("j1")

    def test_list_order_and_counts(self):
        reg = JobRegistry()
        for name in ("a", "b", "c"):
            reg.submit(name, "fig8")
        reg.transition("b", RUNNING)
        reg.request_cancel("c")
        assert [r.job_id for r in reg.list()] == ["a", "b", "c"]
        assert reg.counts() == {QUEUED: 1, RUNNING: 1, CANCELLED: 1}


def _write_manifest(runs_root, run_id, status, scenario="fig8", started_at=""):
    run_dir = runs_root / run_id
    run_dir.mkdir(parents=True)
    RunManifest(
        run_id=run_id,
        scenario_id=scenario,
        status=status,
        started_at=started_at or f"2026-08-07T00:00:{hash(run_id) % 60:02d}Z",
    ).save(run_dir / "manifest.json")


class TestRecover:
    def test_manifest_statuses_map_onto_job_states(self, tmp_path):
        _write_manifest(tmp_path, "r1", "complete", started_at="2026-08-07T01:00:00Z")
        _write_manifest(tmp_path, "r2", "failed", started_at="2026-08-07T02:00:00Z")
        _write_manifest(tmp_path, "r3", "cancelled", started_at="2026-08-07T03:00:00Z")
        reg = JobRegistry.recover(tmp_path)
        states = {r.job_id: r.state for r in reg.list()}
        assert states == {"r1": DONE, "r2": FAILED, "r3": CANCELLED}
        assert all(r.recovered for r in reg.list())
        assert [r.job_id for r in reg.list()] == ["r1", "r2", "r3"]

    def test_failed_runs_are_resumable_after_recovery(self, tmp_path):
        _write_manifest(tmp_path, "r1", "failed")
        reg = JobRegistry.recover(tmp_path)
        assert reg.resume("r1").state == QUEUED

    def test_corrupt_and_unknown_manifests_are_skipped(self, tmp_path):
        _write_manifest(tmp_path, "good", "complete")
        _write_manifest(tmp_path, "odd", "half-done")  # unknown status
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text("{not json", encoding="utf-8")
        reg = JobRegistry.recover(tmp_path)
        assert [r.job_id for r in reg.list()] == ["good"]

    def test_missing_root_recovers_empty(self, tmp_path):
        reg = JobRegistry.recover(tmp_path / "nope")
        assert reg.list() == []


# -- property suite -----------------------------------------------------
#
# The model below *re-states* the intended semantics independently of the
# implementation: plain dicts driven by the published TRANSITIONS table.
# Hypothesis then interleaves submit/transition/cancel/resume arbitrarily
# and we require (a) the registry agrees with the model after every op,
# and (b) no op ever lands a job in a state outside its legal edges.

_JOB_IDS = ("a", "b", "c")

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(_JOB_IDS)),
        st.tuples(
            st.just("transition"),
            st.sampled_from(_JOB_IDS),
            st.sampled_from(sorted(STATES)),
        ),
        st.tuples(st.just("cancel"), st.sampled_from(_JOB_IDS)),
        st.tuples(st.just("resume"), st.sampled_from(_JOB_IDS)),
    ),
    max_size=40,
)


@given(_ops)
def test_registry_agrees_with_model_under_arbitrary_interleavings(ops):
    reg = JobRegistry()
    model = {}  # job_id -> state

    for op in ops:
        kind, job_id = op[0], op[1]
        if kind == "submit":
            if job_id in model:
                with pytest.raises(ValueError):
                    reg.submit(job_id, "fig8")
            else:
                reg.submit(job_id, "fig8")
                model[job_id] = QUEUED
        elif kind == "transition":
            new_state = op[2]
            if job_id not in model:
                with pytest.raises(KeyError):
                    reg.transition(job_id, new_state)
            elif new_state in TRANSITIONS[model[job_id]]:
                reg.transition(job_id, new_state)
                model[job_id] = new_state
            else:
                with pytest.raises(InvalidTransition):
                    reg.transition(job_id, new_state)
        elif kind == "cancel":
            if job_id not in model:
                with pytest.raises(KeyError):
                    reg.request_cancel(job_id)
            elif model[job_id] == QUEUED:
                reg.request_cancel(job_id)
                model[job_id] = CANCELLED
            elif model[job_id] == RUNNING:
                assert reg.request_cancel(job_id).cancel_requested is True
            else:
                with pytest.raises(InvalidTransition):
                    reg.request_cancel(job_id)
        elif kind == "resume":
            if job_id not in model:
                with pytest.raises(KeyError):
                    reg.resume(job_id)
            elif model[job_id] in (CANCELLED, FAILED):
                reg.resume(job_id)
                model[job_id] = QUEUED
            else:
                with pytest.raises(InvalidTransition):
                    reg.resume(job_id)

        # after *every* op: same jobs, same states, all states legal
        assert {r.job_id: r.state for r in reg.list()} == model
        assert all(r.state in STATES for r in reg.list())


@given(
    st.lists(
        st.sampled_from(["complete", "failed", "cancelled", "weird"]),
        max_size=6,
    )
)
def test_recover_rebuilds_exactly_the_mappable_manifests(statuses):
    import tempfile
    from pathlib import Path

    mapping = {"complete": DONE, "failed": FAILED, "cancelled": CANCELLED}
    with tempfile.TemporaryDirectory() as root:
        root = Path(root)
        for i, status in enumerate(statuses):
            _write_manifest(
                root, f"r{i}", status, started_at=f"2026-08-07T00:00:{i:02d}Z"
            )
        reg = JobRegistry.recover(root)
        expected = {
            f"r{i}": mapping[s]
            for i, s in enumerate(statuses)
            if s in mapping
        }
        assert {r.job_id: r.state for r in reg.list()} == expected
        assert all(r.recovered for r in reg.list())
