"""Black-box conformance tests for ``repro-serve``.

The server runs in-process but on its own thread and event loop, bound
to a real ``127.0.0.1`` socket — every test below talks plain HTTP
through :mod:`http.client`, exactly like an external client would. The
load-bearing assertions are the ISSUE's acceptance criteria:

* the live SSE stream's ``data:`` payloads are the run's ``obs.jsonl``
  lines **byte for byte**;
* replay serves the identical event sequence without recomputing
  anything (artifact mtimes pinned);
* cancel → resume produces a ``result.json`` bit-identical to an
  uninterrupted run;
* a client disconnecting mid-stream does not disturb the job;
* concurrent submissions of the same scenario get distinct run ids and
  intact, non-interleaved logs;
* a fresh server over the same runs root recovers the finished jobs.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.serve.app import ReproServer
from repro.serve.jobs import CANCELLED, DONE, TERMINAL

FAST_RUN_TIMEOUT = 120.0


# -- client helpers -----------------------------------------------------

def _request(port, method, path, body=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
        )
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else None
    finally:
        conn.close()


class SseClient:
    """A raw SSE subscription over one http.client connection."""

    def __init__(self, port, path, timeout=FAST_RUN_TIMEOUT):
        self.conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=timeout
        )
        self.conn.request("GET", path)
        self.resp = self.conn.getresponse()
        assert self.resp.status == 200
        assert self.resp.getheader("Content-Type") == "text/event-stream"

    def events(self, stop_after=None):
        """Yield (event, data) pairs until the ``end`` event (or count)."""
        count = 0
        event, data = None, []
        for raw in self.resp:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue  # keepalive
            if line == "":
                if data:
                    payload = "\n".join(data)
                    yield event, payload
                    count += 1
                    if event == "end" or (
                        stop_after is not None and count >= stop_after
                    ):
                        return
                event, data = None, []
            elif line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data.append(line[len("data: "):])

    def close(self):
        self.conn.close()


def _collect_stream(port, path):
    client = SseClient(port, path)
    try:
        return list(client.events())
    finally:
        client.close()


def _wait_for_state(port, job_id, states, timeout=FAST_RUN_TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job = _request(port, "GET", f"/jobs/{job_id}")
        if job["state"] in states:
            return job
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {states}; last: {job}"
    )


def _submit(port, **payload):
    payload.setdefault("experiment_id", "fig8")
    status, job = _request(port, "POST", "/jobs", payload)
    assert status == 202, job
    return job["job_id"]


def _log_lines(server, job_id):
    return (server.run_dir(job_id) / "obs.jsonl").read_text("utf-8").splitlines()


# -- the server under test ---------------------------------------------

@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One ReproServer on a background thread, real socket, port 0."""
    runs_root = tmp_path_factory.mktemp("serve-runs")
    srv = ReproServer(runs_root, workers=2, poll_interval=0.02)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="repro-serve-test", daemon=True)
    thread.start()
    assert started.wait(30), "server failed to start"
    yield srv
    asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)
    loop.close()


# -- routing basics -----------------------------------------------------

class TestRouting:
    def test_healthz(self, server):
        status, payload = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True

    def test_unknown_route_404(self, server):
        status, payload = _request(server.port, "GET", "/nope")
        assert status == 404

    def test_unknown_job_404(self, server):
        status, _ = _request(server.port, "GET", "/jobs/ghost")
        assert status == 404
        status, _ = _request(server.port, "POST", "/jobs/ghost/cancel")
        assert status == 404

    def test_submit_validates_experiment_id(self, server):
        status, payload = _request(
            server.port, "POST", "/jobs", {"experiment_id": "no-such"}
        )
        assert status == 400
        assert "no-such" in payload["error"]
        status, _ = _request(server.port, "POST", "/jobs", {})
        assert status == 400

    def test_replay_of_unfinished_job_is_409(self, server):
        # a queued/running job has no finished log to replay
        job_id = _submit(server.port, round_delay_s=0.3)
        try:
            status, _ = _request(
                server.port, "GET", f"/jobs/{job_id}/events?replay=1"
            )
            assert status == 409
        finally:
            # don't leak a slow job into the other tests' wall-clock
            _request(server.port, "POST", f"/jobs/{job_id}/cancel")
            _wait_for_state(server.port, job_id, TERMINAL)


# -- the conformance core ----------------------------------------------

class TestStreamConformance:
    def test_live_stream_is_the_log_byte_for_byte(self, server):
        job_id = _submit(server.port)
        stream = _collect_stream(server.port, f"/jobs/{job_id}/events")

        # terminates with an end event carrying the final state
        assert stream[-1][0] == "end"
        assert json.loads(stream[-1][1])["state"] == DONE

        # every data payload before it is exactly one log line, in order
        payloads = [data for event, data in stream[:-1]]
        assert payloads == _log_lines(server, job_id)

        # the SSE event names match each line's event field
        names = [event for event, _ in stream[:-1]]
        assert names == [json.loads(p)["event"] for p in payloads]
        assert "round" in names and names[0] == "run_meta"

        # the manifest agrees with what was streamed
        _, result = _request(server.port, "GET", f"/jobs/{job_id}/result")
        assert result["manifest"]["status"] == "complete"
        assert result["manifest"]["round_count"] == sum(
            1 for n in names if n == "round"
        )
        assert result["result"]["experiment_id"] == "fig8"

    def test_replay_is_identical_and_recomputes_nothing(self, server):
        job_id = _submit(server.port)
        live = _collect_stream(server.port, f"/jobs/{job_id}/events")

        run_dir = server.run_dir(job_id)
        mtimes_before = {
            p.name: p.stat().st_mtime_ns
            for p in (run_dir / "obs.jsonl", run_dir / "result.json",
                      run_dir / "manifest.json")
        }
        _, before = _request(server.port, "GET", f"/jobs/{job_id}/result")

        replay = _collect_stream(
            server.port, f"/jobs/{job_id}/events?replay=1"
        )
        assert replay == live  # event names, ids aside: same (event, data)

        # replay is a read: no artifact was rewritten, no round re-run
        mtimes_after = {
            p.name: p.stat().st_mtime_ns
            for p in (run_dir / "obs.jsonl", run_dir / "result.json",
                      run_dir / "manifest.json")
        }
        assert mtimes_after == mtimes_before
        _, after = _request(server.port, "GET", f"/jobs/{job_id}/result")
        assert after["manifest"]["round_count"] == before["manifest"]["round_count"]

    def test_paced_replay_same_sequence(self, server):
        # pacing changes the rhythm, never the content; a huge speed
        # factor keeps the test fast
        job_id = _submit(server.port)
        live = _collect_stream(server.port, f"/jobs/{job_id}/events")
        paced = _collect_stream(
            server.port,
            f"/jobs/{job_id}/events?replay=1&paced=1&speed=10000",
        )
        assert paced == live


# -- fault paths --------------------------------------------------------

class TestFaultPaths:
    def test_client_disconnect_mid_stream_leaves_the_job_alone(self, server):
        job_id = _submit(server.port, round_delay_s=0.15)
        client = SseClient(server.port, f"/jobs/{job_id}/events")
        # read a couple of real events, then vanish without goodbye
        got = list(client.events(stop_after=3))
        assert len(got) == 3
        client.close()

        job = _wait_for_state(server.port, job_id, TERMINAL)
        assert job["state"] == DONE
        # the run's artifacts are whole: one header, a clean manifest
        lines = _log_lines(server, job_id)
        headers = [l for l in lines if json.loads(l)["event"] == "run_meta"]
        assert len(headers) == 1
        manifest = json.loads(
            (server.run_dir(job_id) / "manifest.json").read_text()
        )
        assert manifest["status"] == "complete"

    def test_cancel_then_resume_result_is_bit_identical(self, server):
        # reference: the same scenario, never interrupted
        ref_id = _submit(server.port)
        _wait_for_state(server.port, ref_id, {DONE})
        reference = (server.run_dir(ref_id) / "result.json").read_bytes()

        # victim: paced so the cancel lands mid-run
        job_id = _submit(server.port, round_delay_s=0.4)
        client = SseClient(server.port, f"/jobs/{job_id}/events")
        saw_round = False
        for event, _data in client.events():
            if event == "round":
                saw_round = True
                break
        client.close()
        assert saw_round

        status, payload = _request(
            server.port, "POST", f"/jobs/{job_id}/cancel"
        )
        assert status == 202
        job = _wait_for_state(server.port, job_id, TERMINAL)
        assert job["state"] == CANCELLED
        manifest = json.loads(
            (server.run_dir(job_id) / "manifest.json").read_text()
        )
        assert manifest["status"] == "cancelled"

        # double-cancel is a definite 409, not a silent shrug
        status, _ = _request(server.port, "POST", f"/jobs/{job_id}/cancel")
        assert status == 409

        status, payload = _request(
            server.port, "POST", f"/jobs/{job_id}/resume"
        )
        assert status == 202 and payload["attempts"] == 2
        job = _wait_for_state(server.port, job_id, TERMINAL)
        assert job["state"] == DONE

        assert (
            server.run_dir(job_id) / "result.json"
        ).read_bytes() == reference
        # one contiguous log: original attempt + resumed segment
        headers = [
            json.loads(l)
            for l in _log_lines(server, job_id)
            if json.loads(l)["event"] == "run_meta"
        ]
        assert len(headers) == 2 and headers[1]["resumed"] is True

    def test_concurrent_same_scenario_runs_do_not_interleave(self, server):
        a = _submit(server.port, round_delay_s=0.05)
        b = _submit(server.port, round_delay_s=0.05)
        assert a != b  # distinct run ids for the same scenario
        _wait_for_state(server.port, a, {DONE})
        _wait_for_state(server.port, b, {DONE})

        logs = {job: _log_lines(server, job) for job in (a, b)}
        for job, lines in logs.items():
            rows = [json.loads(l) for l in lines]
            assert sum(1 for r in rows if r["event"] == "run_meta") == 1
            assert rows[0]["event"] == "run_meta"
        # same scenario, same work: the two logs tell the same story
        # (event names and round numbers), just under different run ids
        shape = {
            job: [
                (r["event"], r.get("round"))
                for r in (json.loads(l) for l in lines)
            ]
            for job, lines in logs.items()
        }
        assert shape[a] == shape[b]


# -- durability ---------------------------------------------------------

class TestRestartDurability:
    def test_fresh_server_recovers_finished_jobs(self, server):
        job_id = _submit(server.port)
        _wait_for_state(server.port, job_id, {DONE})

        async def recovered_states():
            other = ReproServer(server.runs_root)
            await other.start()
            try:
                return {r.job_id: r.state for r in other.registry.list()}
            finally:
                await other.stop()

        states = asyncio.run(recovered_states())
        assert states[job_id] == DONE
        # everything recovered came from a manifest, so it is terminal
        assert all(state in TERMINAL for state in states.values())
