"""Tests for the shared experiment configuration."""

import numpy as np
import pytest

from repro.experiments import config
from repro.graphs.geometric import unit_disk_graph
from repro.graphs.traversal import is_connected
from repro.sim.engine import default_grid_layout


class TestScale:
    def test_fast_flag_switches(self):
        assert config.scale(False) is config.FULL
        assert config.scale(True) is config.FAST

    def test_fast_is_cheaper(self):
        assert config.FAST.resolution < config.FULL.resolution
        assert len(config.FAST.k_sweep) < len(config.FULL.k_sweep)
        assert config.FAST.n_rounds < config.FULL.n_rounds


class TestFields:
    def test_paper_parameters(self):
        assert config.RC == 10.0
        assert config.RS == 5.0
        assert config.SPEED == 1.0
        assert config.BETA == 2.0
        assert config.T_REFERENCE == 600.0
        assert config.DURATION == 45.0

    def test_osd_and_ostd_fields_share_layout(self):
        """Same seed -> same gap layout; only the sun handling differs."""
        osd = config.osd_field()
        ostd = config.ostd_field()
        x = np.linspace(0, 100, 7)
        assert np.allclose(osd(x, x, 600.0), ostd(x, x, 600.0))
        # At 12:00 the OSD field brightens; the frozen OSTD field does not.
        assert osd.sun_factor(720.0) > ostd.sun_factor(720.0)

    def test_reference_surface_resolution(self):
        assert config.reference_surface(fast=True).values.shape == (51, 51)

    def test_cma_params_match_paper(self):
        params = config.cma_params()
        assert (params.rc, params.rs, params.beta) == (10.0, 5.0, 2.0)


class TestDefaultGridLayout:
    @pytest.mark.parametrize("k", [4, 9, 16, 36, 64, 100, 144])
    def test_connected_whenever_possible(self, k):
        from repro.geometry.primitives import BoundingBox

        region = BoundingBox.square(100.0)
        pts = default_grid_layout(region, k, rc=10.0)
        if k >= 16:  # spacing can be brought under Rc from 4x4 up
            assert is_connected(unit_disk_graph(pts, 10.0))
        assert (pts[:, 0] >= 0).all() and (pts[:, 0] <= 100).all()

    def test_slack_below_rc(self):
        from repro.geometry.primitives import BoundingBox

        region = BoundingBox.square(100.0)
        pts = default_grid_layout(region, 100, rc=10.0)
        xs = np.unique(pts[:, 0])
        assert np.diff(xs).max() < 10.0  # strictly below Rc
