"""Harness plumbing: obs shard merge and checkpoint wiring.

The process-pool fan-out cannot carry ambient instrumentation across the
fork boundary, so workers write per-task JSONL shards that the parent
replays into its own sinks; these tests exercise the shard replay and the
``run_experiment`` checkpoint/obs wiring without paying for a real pool.
"""

import json

import pytest

from repro.experiments.harness import (
    _replay_shard,
    run_experiment,
    run_recorded,
)
from repro.obs import Instrumentation, RunRegistry, use_instrumentation


def _fresh_cma_run():
    """Drop fig8/9/10's shared per-process simulation cache.

    Those experiments memoise one simulation per (fast,) config; tests
    that need the run to actually execute (so round/profile events hit
    the log) must not inherit a warm cache from an earlier test.
    """
    from repro.experiments import fig8910_cma_run

    fig8910_cma_run._cache.clear()


class TestReplayShard:
    def test_events_land_in_memory_sink(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        rows = [
            {"event": "round", "t": 1.5, "delta": 0.3, "round_index": 0},
            {"event": "span", "t": 2.0, "name": "sense", "ms": 1.25},
        ]
        shard.write_text(
            "\n".join(json.dumps(r) for r in rows) + "\n", encoding="utf-8"
        )
        obs = Instrumentation.in_memory()
        _replay_shard(obs, shard)
        events = obs.memory_events()
        assert [e.name for e in events] == ["round", "span"]
        # Worker-relative timestamps survive (no restamping on replay).
        assert [e.t for e in events] == [1.5, 2.0]
        assert events[0].fields == {"delta": 0.3, "round_index": 0}

    def test_blank_lines_skipped(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text(
            '\n{"event": "x", "t": 0.0}\n\n', encoding="utf-8"
        )
        obs = Instrumentation.in_memory()
        _replay_shard(obs, shard)
        assert len(obs.memory_events()) == 1

    def test_truncated_tail_skipped_with_warning(self, tmp_path):
        """A crashed worker's torn final line must not poison the merge."""
        shard = tmp_path / "shard.jsonl"
        shard.write_text(
            json.dumps({"event": "round", "t": 0.1, "delta": 5.0}) + "\n"
            + '{"event": "round", "t": 0.2, "del',  # died mid-write
            encoding="utf-8",
        )
        obs = Instrumentation.in_memory()
        _replay_shard(obs, shard)
        events = obs.memory_events()
        assert [e.name for e in events] == ["round", "log_warning"]
        warning = events[-1].fields
        assert warning["reason"] == "truncated_shard_tail"
        assert warning["shard"] == "shard.jsonl"
        assert warning["line"] == 2

    def test_malformed_non_json_tail_also_warns(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text(
            json.dumps({"event": "x", "t": 0.0}) + "\n"
            + json.dumps({"no_event_key": 1, "t": 0.0}) + "\n",
            encoding="utf-8",
        )
        obs = Instrumentation.in_memory()
        _replay_shard(obs, shard)
        assert [e.name for e in obs.memory_events()] == [
            "x", "log_warning"
        ]

    def test_mid_file_garbage_still_raises(self, tmp_path):
        """Corruption before the tail is a real error, not a torn write."""
        shard = tmp_path / "shard.jsonl"
        shard.write_text(
            "garbage\n"
            + json.dumps({"event": "x", "t": 0.0}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="malformed shard line"):
            _replay_shard(Instrumentation.in_memory(), shard)

    def test_returns_metrics_rows(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text(
            json.dumps({
                "event": "metrics", "t": 0.5,
                "snapshot": {"net.sent": 3.0},
                "kinds": {"net.sent": "counter"},
            }) + "\n",
            encoding="utf-8",
        )
        rows = _replay_shard(Instrumentation.in_memory(), shard)
        assert rows == [{
            "event": "metrics", "t": 0.5,
            "snapshot": {"net.sent": 3.0},
            "kinds": {"net.sent": "counter"},
        }]


class TestRunExperimentWiring:
    def test_obs_log_written(self, tmp_path):
        log = tmp_path / "run.jsonl"
        run_experiment("fig7", fast=True, obs_log=log)
        lines = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "instrumented run produced no events"
        # The instrumentation closed cleanly: final metrics snapshot event.
        assert lines[-1]["event"] == "metrics"

    def test_obs_log_does_not_leak_ambient(self, tmp_path):
        from repro.obs.instrument import get_instrumentation

        run_experiment("fig7", fast=True, obs_log=tmp_path / "run.jsonl")
        assert not get_instrumentation().enabled

    def test_checkpoint_dir_namespaced_by_experiment(self, tmp_path):
        run_experiment(
            "ablation_beta", fast=True,
            checkpoint_dir=tmp_path, checkpoint_every=5,
        )
        ckpts = list((tmp_path / "ablation_beta").rglob("*.ckpt.npz"))
        assert ckpts, "no checkpoints written under the experiment's dir"

    def test_resume_reproduces_rows(self, tmp_path):
        first = run_experiment(
            "ablation_beta", fast=True,
            checkpoint_dir=tmp_path, checkpoint_every=5,
        )
        second = run_experiment(
            "ablation_beta", fast=True,
            checkpoint_dir=tmp_path, checkpoint_every=5, resume=True,
        )
        assert first.rows == second.rows

    def test_run_meta_is_first_event(self, tmp_path):
        log = tmp_path / "run.jsonl"
        run_experiment("fig7", fast=True, obs_log=log)
        first = json.loads(log.read_text().splitlines()[0])
        assert first["event"] == "run_meta"
        assert first["scenario_id"] == "fig7"
        assert first["seed"] == 7
        assert first["schema_version"] == 1
        assert first["params_hash"].startswith("sha256:")

    def test_profile_flag_emits_profile_events(self, tmp_path):
        _fresh_cma_run()
        log = tmp_path / "run.jsonl"
        run_experiment("fig10", fast=True, obs_log=log, profile=True)
        names = {
            json.loads(line)["event"]
            for line in log.read_text().splitlines()
        }
        assert "profile.phase" in names
        assert "profile.round" in names

    def test_no_profile_events_without_flag(self, tmp_path):
        _fresh_cma_run()
        log = tmp_path / "run.jsonl"
        run_experiment("fig10", fast=True, obs_log=log)
        names = {
            json.loads(line)["event"]
            for line in log.read_text().splitlines()
        }
        assert not any(n.startswith("profile.") for n in names)


class TestPooledAggregation:
    def test_merged_log_gets_fleet_rollup(self, tmp_path, monkeypatch):
        """The pooled merged log ends with one aggregated metrics event
        consistent with re-merging the per-worker snapshots."""
        from repro.experiments import harness
        from repro.experiments.registry import get_experiment
        from repro.obs import aggregate_metrics_events

        monkeypatch.setattr(
            harness, "all_experiments",
            lambda: [get_experiment("fig7"), get_experiment("fig1")],
        )
        log = tmp_path / "merged.jsonl"
        harness.collect_results(fast=True, processes=2, obs_log=log)
        rows = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert rows[0]["event"] == "run_meta"
        assert rows[0]["scenario_id"] == "all"
        # Each worker's own header survives the merge, in shard order.
        scenarios = [
            r["scenario_id"] for r in rows if r["event"] == "run_meta"
        ]
        assert scenarios == ["all", "fig7", "fig1"]

        rollups = [
            r for r in rows
            if r["event"] == "metrics" and r.get("aggregated")
        ]
        assert len(rollups) == 1
        merged, n_shards = aggregate_metrics_events(rows)
        assert rollups[0]["snapshot"] == merged
        assert rollups[0]["shards"] == n_shards
        # summarize picks the rollup (it is the last metrics event).
        from repro.obs import summarize_events

        assert summarize_events(rows).metrics == merged


class TestRunRecorded:
    def test_manifest_written_and_verifiable(self, tmp_path):
        _fresh_cma_run()
        runs = tmp_path / "runs"
        result, manifest = run_recorded("fig10", runs, fast=True)
        run_dir = runs / manifest.run_id
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "obs.jsonl").exists()
        assert (run_dir / "result.json").exists()

        assert manifest.scenario_id == "fig10"
        assert manifest.status == "complete"
        assert manifest.round_count > 0
        assert manifest.final_delta is not None
        assert manifest.seeds == {"field": 7}
        assert manifest.counters  # scalar rollup from the metrics event
        assert {a.name for a in manifest.artifacts} == {
            "obs_log", "result"
        }

        registry = RunRegistry(runs)
        assert registry.get(manifest.run_id).run_id == manifest.run_id
        assert registry.verify(manifest.run_id).ok
        # The run dir is fully manifested: gc finds nothing to collect.
        assert registry.gc().n_orphans == 0

        payload = json.loads((run_dir / "result.json").read_text())
        assert payload["experiment_id"] == "fig10"
        assert payload["rows"] == result.rows

    def test_failed_run_still_leaves_manifest(self, tmp_path):
        runs = tmp_path / "runs"
        with pytest.raises(KeyError):
            run_recorded("no_such_experiment", runs)
        manifests = RunRegistry(runs).list_runs()
        assert len(manifests) == 1
        assert manifests[0].status == "failed"

    def test_checkpoints_manifested(self, tmp_path):
        runs = tmp_path / "runs"
        _, manifest = run_recorded(
            "ablation_beta", runs, fast=True,
            checkpoints=True, checkpoint_every=5,
        )
        kinds = {a.kind for a in manifest.artifacts}
        assert "checkpoint" in kinds
        assert RunRegistry(runs).verify(manifest.run_id).ok
        assert RunRegistry(runs).gc().n_orphans == 0
