"""Harness plumbing: obs shard merge and checkpoint wiring.

The process-pool fan-out cannot carry ambient instrumentation across the
fork boundary, so workers write per-task JSONL shards that the parent
replays into its own sinks; these tests exercise the shard replay and the
``run_experiment`` checkpoint/obs wiring without paying for a real pool.
"""

import json

import pytest

from repro.experiments.harness import _replay_shard, run_experiment
from repro.obs import Instrumentation, use_instrumentation


class TestReplayShard:
    def test_events_land_in_memory_sink(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        rows = [
            {"event": "round", "t": 1.5, "delta": 0.3, "round_index": 0},
            {"event": "span", "t": 2.0, "name": "sense", "ms": 1.25},
        ]
        shard.write_text(
            "\n".join(json.dumps(r) for r in rows) + "\n", encoding="utf-8"
        )
        obs = Instrumentation.in_memory()
        _replay_shard(obs, shard)
        events = obs.memory_events()
        assert [e.name for e in events] == ["round", "span"]
        # Worker-relative timestamps survive (no restamping on replay).
        assert [e.t for e in events] == [1.5, 2.0]
        assert events[0].fields == {"delta": 0.3, "round_index": 0}

    def test_blank_lines_skipped(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text(
            '\n{"event": "x", "t": 0.0}\n\n', encoding="utf-8"
        )
        obs = Instrumentation.in_memory()
        _replay_shard(obs, shard)
        assert len(obs.memory_events()) == 1


class TestRunExperimentWiring:
    def test_obs_log_written(self, tmp_path):
        log = tmp_path / "run.jsonl"
        run_experiment("fig7", fast=True, obs_log=log)
        lines = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "instrumented run produced no events"
        # The instrumentation closed cleanly: final metrics snapshot event.
        assert lines[-1]["event"] == "metrics"

    def test_obs_log_does_not_leak_ambient(self, tmp_path):
        from repro.obs.instrument import get_instrumentation

        run_experiment("fig7", fast=True, obs_log=tmp_path / "run.jsonl")
        assert not get_instrumentation().enabled

    def test_checkpoint_dir_namespaced_by_experiment(self, tmp_path):
        run_experiment(
            "ablation_beta", fast=True,
            checkpoint_dir=tmp_path, checkpoint_every=5,
        )
        ckpts = list((tmp_path / "ablation_beta").rglob("*.ckpt.npz"))
        assert ckpts, "no checkpoints written under the experiment's dir"

    def test_resume_reproduces_rows(self, tmp_path):
        first = run_experiment(
            "ablation_beta", fast=True,
            checkpoint_dir=tmp_path, checkpoint_every=5,
        )
        second = run_experiment(
            "ablation_beta", fast=True,
            checkpoint_dir=tmp_path, checkpoint_every=5, resume=True,
        )
        assert first.rows == second.rows
