"""Run every experiment in fast mode and check the paper's shape claims.

These are the integration tests of the reproduction itself: each paper
figure's qualitative claim must hold on the scaled-down configuration.
"""

import numpy as np
import pytest

from repro.experiments.harness import run_experiment


@pytest.fixture(scope="module")
def results():
    """Fast-mode results, computed once per test session."""
    cache = {}

    def get(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, fast=True)
        return cache[experiment_id]

    return get


class TestFigureShapes:
    def test_fig1_field_statistics(self, results):
        r = results("fig1")
        values = {row["quantity"]: row["value"] for row in r.rows}
        assert values["light min (KLux)"] >= 0.0
        assert values["light max (KLux)"] > values["light mean (KLux)"]
        assert "birdview" in r.artifacts

    def test_fig2_refinement_mechanics(self, results):
        r = results("fig2")
        stages = {row["stage"]: row for row in r.rows}
        assert stages["before"]["triangles"] == 2
        assert stages["after"]["triangles"] == 4

    def test_fig3_cwd_beats_uniform(self, results):
        r = results("fig3")
        deltas = {row["layout"]: row["delta"] for row in r.rows}
        assert deltas["cwd (Fig. 3c)"] < deltas["uniform (Fig. 3b)"]
        curv = {row["layout"]: row["total_curvature"] for row in r.rows}
        assert curv["cwd (Fig. 3c)"] > curv["uniform (Fig. 3b)"]

    def test_fig4_lcm_actions(self, results):
        r = results("fig4")
        actions = {row["node"]: row["action"] for row in r.rows}
        assert actions["n3"] == "stay (direct link)"
        assert "bridged" in actions["n4"]
        assert "follow" in actions["n5"]
        assert "new neighbour" in actions["n2"]

    def test_fig5_fig6_quality_ordering(self, results):
        d30 = results("fig5").rows[0]["delta"]
        d100 = results("fig6").rows[0]["delta"]
        assert d100 < d30
        assert results("fig5").rows[0]["connected"]
        assert results("fig6").rows[0]["connected"]

    def test_fig5_spends_most_nodes_on_connectivity(self, results):
        row = results("fig5").rows[0]
        assert row["relay_nodes"] > 0

    def test_fig7_fra_beats_random(self, results):
        r = results("fig7")
        fra = r.column_values("delta_fra")
        rnd = r.column_values("delta_random")
        wins = sum(1 for f, x in zip(fra, rnd) if f < x)
        assert wins >= len(fra) - 1  # FRA wins (almost) everywhere
        # delta decreases with k for both methods.
        assert fra[-1] < fra[0]
        assert rnd[-1] < rnd[0]

    def test_fig8_initial_grid_connected(self, results):
        row = results("fig8").rows[0]
        assert row["components"] == 1

    def test_fig10_delta_improves_and_stays_connected(self, results):
        r = results("fig10")
        cma = r.column_values("delta_cma")
        static = r.column_values("delta_static_grid")
        assert min(cma) < cma[0]  # movement helps
        assert all(r.column_values("connected"))
        # CMA at least matches the static control at the end of the run.
        assert cma[-1] < static[-1]


class TestAblationsAndExtensions:
    def test_selection_ablation_local_error_competitive(self, results):
        r = results("ablation_selection")
        deltas = {row["criterion"]: row["delta"] for row in r.rows}
        assert deltas["local_error"] <= deltas["random"]
        assert deltas["local_error"] <= deltas["curvature"]

    def test_beta_ablation_runs_all(self, results):
        r = results("ablation_beta")
        assert len(r.rows) == 4
        assert all(np.isfinite(row["delta_final"]) for row in r.rows)

    def test_rs_ablation_rows(self, results):
        r = results("ablation_rs")
        assert [row["rs"] for row in r.rows] == [2.0, 5.0, 8.0]

    def test_trace_sampling_helps(self, results):
        r = results("ext_trace_sampling")
        means = {row["mode"]: row["delta_mean"] for row in r.rows}
        point = means["point sampling (paper)"]
        trace = means["trace sampling (3/move)"]
        assert trace <= point * 1.02

    def test_failures_degrade_gracefully(self, results):
        r = results("ext_failures")
        rows = {row["scenario"]: row for row in r.rows}
        assert rows["20% node deaths"]["alive_final"] == 80
        assert rows["baseline"]["alive_final"] == 100

    def test_exact_ablation_bounded_ratio(self, results):
        r = results("ablation_exact")
        assert all(row["ratio"] < 2.0 for row in r.rows)
        assert all(
            row["connected_subsets"] <= row["subsets_searched"]
            for row in r.rows
        )

    def test_connectivity_ablation_has_overhead_column(self, results):
        r = results("ablation_connectivity")
        assert all(np.isfinite(row["overhead"]) for row in r.rows)
        assert [row["k"] for row in r.rows] == sorted(row["k"] for row in r.rows)

    def test_nonconvex_degrades_gracefully(self, results):
        r = results("ext_nonconvex")
        deltas = {row["case"]: row["delta"] for row in r.rows}
        fra = next(v for k, v in deltas.items() if k.startswith("FRA"))
        rnd = next(v for k, v in deltas.items() if k.startswith("random"))
        # FRA has no guaranteed edge on discontinuous fields, but it must
        # stay in the same ballpark (graceful degradation, no blow-up).
        assert fra < 2.0 * rnd
        connected = {row["case"]: row["connected"] for row in r.rows}
        assert connected["CMA final (mobile)"] is True

    def test_interpolation_delaunay_wins(self, results):
        r = results("ablation_interpolation")
        deltas = {row["method"]: row["delta"] for row in r.rows}
        assert deltas["delaunay"] <= deltas["nearest"]
        assert deltas["delaunay"] <= deltas["idw"]

    def test_localsearch_never_hurts(self, results):
        r = results("ablation_localsearch")
        by = {(row["start"], row["polish"] != "none"): row["delta"] for row in r.rows}
        assert by[("FRA", True)] <= by[("FRA", False)] + 1e-9
        assert by[("uniform grid", True)] <= by[("uniform grid", False)] + 1e-9

    def test_seed_robustness_rows(self, results):
        r = results("ablation_seeds")
        assert len(r.rows) == 2  # fast mode: two seeds
        assert all(row["random_over_fra"] > 1.0 for row in r.rows)
        assert all(row["cma_connected"] for row in r.rows)

    def test_sensor_noise_rows(self, results):
        r = results("ext_sensor_noise")
        assert [row["noise_std_klux"] for row in r.rows] == [0.0, 0.1, 0.3, 1.0]
        assert all(row["always_connected"] for row in r.rows)

    def test_energy_budget_sweep(self, results):
        r = results("ext_energy")
        rows = {row["budget_m"]: row for row in r.rows}
        assert rows["unlimited"]["alive_final"] == 100
        assert rows[1.0]["alive_final"] <= rows[3.0]["alive_final"]

    def test_centralized_never_beats_cma_here(self, results):
        r = results("ext_centralized")
        means = {row["controller"]: row["delta_mean"] for row in r.rows}
        cma = means["CMA (distributed, paper)"]
        assert all(
            cma <= v
            for k, v in means.items()
            if k.startswith("centralized")
        )
