"""Tests for the experiment registry and harness."""

import pytest

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    experiment,
    get_experiment,
)
from repro.experiments.harness import format_result, format_table


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = {spec.experiment_id for spec in all_experiments()}
        for fig in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "fig8", "fig9", "fig10"):
            assert fig in ids
        for extra in ("ablation_selection", "ablation_beta", "ablation_rs",
                      "ablation_seeds", "ablation_interpolation",
                      "ablation_localsearch",
                      "ablation_exact", "ablation_connectivity",
                      "ext_trace_sampling", "ext_failures",
                      "ext_nonconvex", "ext_centralized", "ext_energy",
                      "ext_sensor_noise"):
            assert extra in ids

    def test_unknown_id_raises_with_guidance(self):
        with pytest.raises(KeyError, match="known:"):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @experiment("fig1", "dup", "dup")
            def dup(fast=False):
                raise AssertionError

    def test_specs_have_metadata(self):
        for spec in all_experiments():
            assert spec.title
            assert spec.paper_ref
            assert callable(spec.runner)


class TestResultType:
    def make(self):
        return ExperimentResult(
            experiment_id="x",
            title="t",
            columns=("a", "b"),
            rows=[{"a": 1, "b": 2}, {"a": 3, "b": 4}],
            notes=["hello"],
            artifacts={"art": "<ascii>"},
        )

    def test_column_values(self):
        result = self.make()
        assert result.column_values("a") == [1, 3]
        with pytest.raises(KeyError):
            result.column_values("zzz")

    def test_format_table(self):
        text = format_table(self.make())
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4

    def test_format_result_includes_notes_and_artifacts(self):
        text = format_result(self.make())
        assert "note: hello" in text
        assert "<ascii>" in text
        without = format_result(self.make(), show_artifacts=False)
        assert "<ascii>" not in without
