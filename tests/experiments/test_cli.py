"""Tests for the repro-exp CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig4", "--fast"])
        assert args.experiment_id == "fig4"
        assert args.fast


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "ablation_beta" in out

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "LCM decisions" in out
        assert "n5" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "known:" in capsys.readouterr().err

    def test_no_artifacts_flag(self, capsys):
        assert main(["run", "fig1", "--fast", "--no-artifacts"]) == 0
        out = capsys.readouterr().out
        assert "-- birdview --" not in out


class TestRunsCli:
    """`repro-exp runs` and `run --runs-dir/--profile` round trips."""

    def _record(self, tmp_path, capsys, extra=()):
        runs = tmp_path / "runs"
        assert main([
            "run", "fig7", "--fast", "--no-artifacts",
            "--runs-dir", str(runs), *extra,
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded run" in out
        run_ids = sorted(p.name for p in runs.iterdir())
        return runs, run_ids

    def test_record_then_list_show_compare_gc(self, tmp_path, capsys):
        runs, _ = self._record(tmp_path, capsys)
        runs, run_ids = self._record(tmp_path, capsys)
        assert len(run_ids) == 2

        assert main(["runs", "--runs-dir", str(runs), "list"]) == 0
        out = capsys.readouterr().out
        for run_id in run_ids:
            assert run_id in out

        assert main([
            "runs", "--runs-dir", str(runs), "list", "--scenario", "nope",
        ]) == 0
        assert "(no runs)" in capsys.readouterr().out

        assert main([
            "runs", "--runs-dir", str(runs), "show", run_ids[0],
        ]) == 0
        out = capsys.readouterr().out
        assert "verified ok" in out
        assert "obs_log" in out

        assert main([
            "runs", "--runs-dir", str(runs), "compare", *run_ids,
        ]) == 0
        out = capsys.readouterr().out
        assert "final_delta" in out and run_ids[1] in out

        stray = runs / "stray.tmp"
        stray.write_bytes(b"x")
        assert main(["runs", "--runs-dir", str(runs), "gc"]) == 0
        assert "--delete" in capsys.readouterr().out
        assert stray.exists()  # dry-run leaves it
        assert main([
            "runs", "--runs-dir", str(runs), "gc", "--delete",
        ]) == 0
        assert not stray.exists()

    def test_show_tampered_run_fails(self, tmp_path, capsys):
        runs, run_ids = self._record(tmp_path, capsys)
        (runs / run_ids[0] / "obs.jsonl").unlink()
        assert main([
            "runs", "--runs-dir", str(runs), "show", run_ids[0],
        ]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_show_unknown_run(self, tmp_path, capsys):
        assert main([
            "runs", "--runs-dir", str(tmp_path), "show", "nope",
        ]) == 2
        assert "no run" in capsys.readouterr().err

    def test_profile_requires_obs_target(self, capsys):
        assert main(["run", "fig7", "--fast", "--profile"]) == 2
        assert "--profile requires" in capsys.readouterr().err

    def test_runs_dir_conflicts_with_obs_log(self, tmp_path, capsys):
        assert main([
            "run", "fig7", "--fast",
            "--runs-dir", str(tmp_path / "runs"),
            "--obs-log", str(tmp_path / "r.jsonl"),
        ]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_profiled_recording(self, tmp_path, capsys):
        import json

        runs, run_ids = self._record(tmp_path, capsys, extra=["--profile"])
        log = runs / run_ids[0] / "obs.jsonl"
        rows = [json.loads(line) for line in log.read_text().splitlines()]
        assert rows[0]["event"] == "run_meta"
        # fig7 runs FRA (no scheduler rounds), so profile events are not
        # guaranteed; the flag must at least be recorded in the manifest.
        manifest = json.loads(
            (runs / run_ids[0] / "manifest.json").read_text()
        )
        assert manifest["params"]["profile"] is True

    def test_summarize_prints_profile_table(self, tmp_path, capsys):
        from repro.experiments.harness import run_recorded
        from tests.experiments.test_harness_obs import _fresh_cma_run

        _fresh_cma_run()
        runs = tmp_path / "runs"
        _, manifest = run_recorded("fig10", runs, fast=True, profile=True)
        log = runs / manifest.run_id / "obs.jsonl"
        assert main(["obs", "summarize", str(log)]) == 0
        out = capsys.readouterr().out
        assert "== profile:" in out
        assert "rounds profiled:" in out
