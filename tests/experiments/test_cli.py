"""Tests for the repro-exp CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig4", "--fast"])
        assert args.experiment_id == "fig4"
        assert args.fast


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "ablation_beta" in out

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "LCM decisions" in out
        assert "n5" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "known:" in capsys.readouterr().err

    def test_no_artifacts_flag(self, capsys):
        assert main(["run", "fig1", "--fast", "--no-artifacts"]) == 0
        out = capsys.readouterr().out
        assert "-- birdview --" not in out
