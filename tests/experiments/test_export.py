"""Tests for CSV/Markdown export of experiment results."""

import csv

import pytest

from repro.experiments.export import (
    markdown_report,
    markdown_table,
    write_csv,
    write_markdown_report,
)
from repro.experiments.registry import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo experiment",
        columns=("k", "delta"),
        rows=[{"k": 1, "delta": 10.5}, {"k": 2, "delta": 7.25}],
        notes=["shape holds"],
        artifacts={"ascii": "###"},
    )


class TestCsv:
    def test_round_trip(self, result, tmp_path):
        path = write_csv(result, tmp_path / "out" / "demo.csv")
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows == [
            {"k": "1", "delta": "10.5"},
            {"k": "2", "delta": "7.25"},
        ]

    def test_missing_cells_blank(self, tmp_path):
        result = ExperimentResult(
            experiment_id="x", title="x", columns=("a", "b"),
            rows=[{"a": 1}],
        )
        path = write_csv(result, tmp_path / "x.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows == [{"a": "1", "b": ""}]


class TestMarkdown:
    def test_table_structure(self, result):
        text = markdown_table(result)
        lines = text.splitlines()
        assert lines[0] == "| k | delta |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 10.5 |"

    def test_report_includes_notes_not_artifacts(self, result):
        text = markdown_report([result])
        assert "## demo — Demo experiment" in text
        assert "> shape holds" in text
        assert "###" not in text  # artifacts are terminal-only

    def test_write_report(self, result, tmp_path):
        path = write_markdown_report([result, result], tmp_path / "report.md")
        text = path.read_text()
        assert text.count("## demo") == 2
        assert text.endswith("\n")


class TestCliIntegration:
    def test_run_with_csv(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out_path = tmp_path / "fig4.csv"
        assert main(["run", "fig4", "--no-artifacts", "--csv", str(out_path)]) == 0
        assert out_path.exists()
        with out_path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert {row["node"] for row in rows} == {"n2", "n3", "n4", "n5"}
